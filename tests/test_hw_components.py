"""Unit tests for the Phi accelerator components (config, buffers, DRAM,
energy model, preprocessor, L1/L2 processors and the neuron array)."""

import numpy as np
import pytest

from repro.core.patterns import PatternSet
from repro.hw import (
    ArchConfig,
    Buffer,
    BufferSet,
    BufferSizes,
    Compressor,
    DRAMModel,
    L1Processor,
    L2Processor,
    Packer,
    PatternMatcher,
    PhiEnergyModel,
    Preprocessor,
    ReconfigurableAdderTree,
    SpikingNeuronArray,
)
from repro.hw.preprocessor import LABEL_NONZERO, LABEL_PSUM, CompressedRow, Pack, PackUnit


@pytest.fixture
def arch():
    return ArchConfig()


@pytest.fixture
def small_patterns():
    return PatternSet(
        np.array(
            [[0, 1, 1, 0, 0, 1, 0, 0], [1, 1, 0, 1, 0, 0, 1, 0], [0, 0, 0, 0, 1, 1, 1, 1]],
            dtype=np.uint8,
        )
    )


class TestArchConfig:
    def test_paper_defaults(self, arch):
        assert arch.tile_m == 256 and arch.tile_k == 16 and arch.tile_n == 32
        assert arch.buffers.total == 240 * 1024
        assert arch.frequency_mhz == 500.0

    def test_derived_quantities(self, arch):
        assert arch.frequency_hz == 5e8
        assert arch.cycle_time_ns == pytest.approx(2.0)
        assert arch.dram_bytes_per_cycle == pytest.approx(128.0)

    def test_buffer_scaling(self):
        scaled = BufferSizes().scaled(2.0)
        assert scaled.total == 480 * 1024
        with pytest.raises(ValueError):
            BufferSizes().scaled(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ArchConfig(tile_m=0)
        with pytest.raises(ValueError):
            ArchConfig(frequency_mhz=0)

    def test_with_overrides(self, arch):
        other = arch.with_overrides(tile_n=64)
        assert other.tile_n == 64 and arch.tile_n == 32


class TestBuffersAndDram:
    def test_buffer_accounting(self):
        buffer = Buffer("weight", 1024)
        buffer.read(100)
        buffer.write(50)
        assert buffer.total_access_bytes == 150
        buffer.reset()
        assert buffer.total_access_bytes == 0

    def test_buffer_fill_overflow(self):
        buffer = Buffer("pwp", 100)
        assert buffer.fill(60) == 0
        assert buffer.fill(150) == 50
        assert buffer.overflow_bytes == 50

    def test_buffer_invalid(self):
        with pytest.raises(ValueError):
            Buffer("bad", 0)
        with pytest.raises(ValueError):
            Buffer("ok", 10).read(-1)

    def test_buffer_set(self):
        buffers = BufferSet()
        assert buffers.total_capacity_bytes == 240 * 1024
        buffers.weight.read(10)
        assert buffers.total_access_bytes == 10
        assert buffers.access_summary()["weight"] == 10
        buffers.reset()
        assert buffers.total_access_bytes == 0

    def test_dram_traffic_and_cycles(self, arch):
        dram = DRAMModel(arch)
        dram.read(1000, "weights")
        dram.write(280, "outputs")
        assert dram.total_bytes == 1280
        assert dram.category_bytes("weights") == 1000
        assert dram.category_bytes("missing") == 0
        assert dram.transfer_cycles() == pytest.approx(10.0)
        dram.reset()
        assert dram.total_bytes == 0

    def test_dram_invalid(self, arch):
        with pytest.raises(ValueError):
            DRAMModel(arch).read(-5)


class TestEnergyModel:
    def test_table3_totals(self, arch):
        model = PhiEnergyModel(arch)
        assert model.total_area_mm2() == pytest.approx(0.663, abs=0.01)
        assert model.total_power_mw() == pytest.approx(346.5, abs=1.0)

    def test_buffer_scale_affects_area(self, arch):
        small = PhiEnergyModel(arch, buffer_scale=0.5)
        large = PhiEnergyModel(arch, buffer_scale=2.0)
        assert small.total_area_mm2() < large.total_area_mm2()

    def test_component_energy_scales_with_cycles(self, arch):
        model = PhiEnergyModel(arch)
        assert model.component_energy("l1_processor", 2000) == pytest.approx(
            2 * model.component_energy("l1_processor", 1000)
        )

    def test_energy_from_activity(self, arch):
        model = PhiEnergyModel(arch)
        breakdown = model.energy_from_activity(
            component_busy_cycles={"l1_processor": 100, "buffer": 100},
            buffer_bytes=1000,
            dram_bytes=1000,
        )
        assert breakdown.total == pytest.approx(
            breakdown.core + breakdown.buffer + breakdown.dram
        )
        assert breakdown.dram > 0
        combined = breakdown + breakdown
        assert combined.total == pytest.approx(2 * breakdown.total)


class TestPatternMatcher:
    def test_one_row_per_cycle(self, arch, small_patterns, rng):
        matcher = PatternMatcher(arch)
        tile = (rng.random((20, 8)) < 0.3).astype(np.uint8)
        result = matcher.match_tile(tile, small_patterns)
        assert result.cycles == 20
        assert result.comparisons == 20 * 3
        assert np.array_equal(
            result.decomposition.reconstruct(), tile.astype(np.int8)
        )


class TestCompressorAndPacker:
    def test_compressor_filters_zero_rows(self, arch):
        level2 = np.array([[0, 0, 0, 0], [1, 0, -1, 0], [0, 0, 0, 0]], dtype=np.int8)
        result = Compressor(arch).compress(level2)
        assert result.filtered_rows == 2
        assert len(result.rows) == 1
        assert result.rows[0].columns == (0, 2)
        assert result.rows[0].values == (1, -1)
        assert result.total_nonzeros == 2
        assert result.cycles == 3

    def test_pack_unit_validation(self):
        with pytest.raises(ValueError):
            PackUnit(label="weird", index=0, value=1, row_id=0)
        with pytest.raises(ValueError):
            PackUnit(label=LABEL_NONZERO, index=0, value=2, row_id=0)

    def test_pack_capacity(self):
        pack = Pack(capacity=2)
        pack.add_row([PackUnit(LABEL_NONZERO, 0, 1, 0)])
        assert pack.free_space == 1
        with pytest.raises(ValueError):
            pack.add_row([PackUnit(LABEL_NONZERO, 1, 1, 1), PackUnit(LABEL_PSUM, 1, 1, 1)])

    def test_packer_packs_all_units(self, arch):
        rows = [
            CompressedRow(row_id=i, columns=(0, 1), values=(1, -1), needs_psum=True)
            for i in range(10)
        ]
        result = Packer(arch).pack_rows(rows)
        total_units = sum(pack.num_units for pack in result.packs)
        assert total_units == 10 * 3  # 2 nonzeros + 1 psum per row
        assert result.cycles == 10
        assert all(pack.num_units <= arch.pack_size for pack in result.packs)

    def test_packer_avoids_psum_bank_conflicts(self, arch):
        # Rows 0 and 8 share a bank (8 banks); they must not share a pack.
        rows = [
            CompressedRow(row_id=0, columns=(0,), values=(1,), needs_psum=True),
            CompressedRow(row_id=8, columns=(1,), values=(1,), needs_psum=True),
        ]
        result = Packer(arch).pack_rows(rows)
        for pack in result.packs:
            banks = [u.row_id % arch.num_channels for u in pack.units if u.label == LABEL_PSUM]
            assert len(banks) == len(set(banks))

    def test_packer_splits_oversized_rows(self, arch):
        row = CompressedRow(
            row_id=0, columns=tuple(range(12)), values=tuple([1] * 12), needs_psum=True
        )
        result = Packer(arch).pack_rows([row])
        assert sum(p.num_units for p in result.packs) == 13

    def test_preprocessor_end_to_end(self, arch, small_patterns, rng):
        preprocessor = Preprocessor(arch)
        tile = (rng.random((40, 8)) < 0.25).astype(np.uint8)
        result = preprocessor.process_tile(tile, small_patterns)
        assert result.cycles >= 40
        nnz = int(np.count_nonzero(result.matcher.level2))
        packed_nonzeros = sum(
            1 for pack in result.packs for u in pack.units if u.label == LABEL_NONZERO
        )
        assert packed_nonzeros == nnz


class TestL1Processor:
    def test_zero_skipping_cycles(self, arch):
        processor = L1Processor(arch)
        matrix = np.zeros((4, 16), dtype=np.int32)
        matrix[0, :10] = 1  # 10 nonzero indices in the first row
        result = processor.process_tile(matrix)
        # Row 0 takes ceil(10/8) = 2 cycles, rows 1-3 take 1 cycle each.
        assert result.cycles == 2 + 3
        assert result.pwp_accumulations == 10

    def test_prefetch_traffic_less_than_unfiltered(self, arch):
        processor = L1Processor(arch)
        matrix = np.zeros((8, 4), dtype=np.int32)
        matrix[:, 0] = [1, 1, 2, 2, 3, 3, 3, 0]
        result = processor.process_tile(matrix, num_patterns_per_partition=64)
        assert result.unique_patterns_used == 3
        assert result.pwp_bytes_prefetched < result.pwp_bytes_unfiltered
        assert 0.0 < result.prefetch_saving_ratio < 1.0

    def test_rejects_bad_input(self, arch):
        with pytest.raises(ValueError):
            L1Processor(arch).process_tile(np.zeros(4))

    def test_explicit_zero_width_is_not_the_default(self, arch):
        # Regression: ``output_width or tile_n`` silently promoted an
        # explicit 0 to the 32-wide config default.
        matrix = np.ones((4, 16), dtype=np.int32)
        result = L1Processor(arch).process_tile(matrix, output_width=0)
        assert result.pwp_bytes_prefetched == 0.0
        assert result.pwp_bytes_unfiltered == 0.0

    def test_explicit_zero_pattern_count_is_not_the_default(self, arch):
        matrix = np.zeros((4, 16), dtype=np.int32)
        result = L1Processor(arch).process_tile(
            matrix, num_patterns_per_partition=0
        )
        assert result.pwp_bytes_unfiltered == 0.0


class TestL2Processor:
    def test_cycles_track_pack_count(self, arch):
        processor = L2Processor(arch)
        packs = []
        for i in range(5):
            pack = Pack(arch.pack_size)
            pack.add_row([PackUnit(LABEL_NONZERO, 0, 1, i), PackUnit(LABEL_PSUM, i, 1, i)])
            packs.append(pack)
        result = processor.process_packs(packs)
        assert result.packs_processed == 5
        assert result.cycles == 5 + L2Processor.PIPELINE_DEPTH
        assert result.weight_accumulations == 5
        assert result.psum_accumulations == 5
        assert result.total_accumulations == 10

    def test_empty_packs(self, arch):
        result = L2Processor(arch).process_packs([])
        assert result.cycles == 0

    def test_explicit_zero_width_is_not_the_default(self, arch):
        # Regression: ``output_width or tile_n`` silently promoted an
        # explicit 0 to the 32-wide config default.
        pack = Pack(arch.pack_size)
        pack.add_row([PackUnit(LABEL_NONZERO, 0, 1, 0), PackUnit(LABEL_PSUM, 0, 1, 0)])
        result = L2Processor(arch).process_packs([pack], output_width=0)
        assert result.weight_bytes_read == 0.0
        assert result.psum_bytes_accessed == 0.0

    def test_pack_counts_zero_width_matches_packs(self, arch):
        pack = Pack(arch.pack_size)
        pack.add_row([PackUnit(LABEL_NONZERO, 0, 1, 0), PackUnit(LABEL_PSUM, 0, 1, 0)])
        from repro.hw.preprocessor import PackCounts

        counts = PackCounts(
            num_packs=1, weight_units=1, psum_units=1, cycles=1, evictions=0
        )
        by_counts = L2Processor(arch).process_pack_counts(counts, output_width=0)
        by_packs = L2Processor(arch).process_packs([pack], output_width=0)
        assert by_counts.weight_bytes_read == by_packs.weight_bytes_read == 0.0
        assert by_counts.psum_bytes_accessed == by_packs.psum_bytes_accessed == 0.0

    def test_adder_tree(self):
        tree = ReconfigurableAdderTree(num_inputs=8, simd_width=32)
        assert tree.segments_for([3, 3, 2]) == 1
        assert tree.segments_for([8, 8]) == 2
        assert tree.additions_for([2, 2]) == 4 * 32
        with pytest.raises(ValueError):
            tree.segments_for([0])


class TestNeuronArray:
    def test_cycles_and_firing(self, arch):
        array = SpikingNeuronArray(arch, num_units=32, threshold=1.0)
        tile = np.array([[2.0, 0.5], [0.1, 1.5]])
        result = array.process_tile(tile)
        assert result.neuron_updates == 4
        assert result.spikes_emitted == 2
        assert result.cycles == 1
        assert result.firing_rate == pytest.approx(0.5)

    def test_estimate(self, arch):
        array = SpikingNeuronArray(arch)
        result = array.estimate(64, 32)
        assert result.cycles == 64
        assert result.neuron_updates == 64 * 32

    def test_invalid(self, arch):
        with pytest.raises(ValueError):
            SpikingNeuronArray(arch, num_units=0)
        with pytest.raises(ValueError):
            SpikingNeuronArray(arch, threshold=0.0)


class TestCountsFastPath:
    """The counter-level preprocessor path must agree with the object path."""

    def _random_level2(self, rng, rows, cols, density):
        values = rng.choice([-1, 0, 1], size=(rows, cols), p=[density / 2, 1 - density, density / 2])
        return values.astype(np.int8)

    @pytest.mark.parametrize("needs_psum", [True, False])
    @pytest.mark.parametrize("density", [0.0, 0.1, 0.6])
    def test_compress_counts_matches_compress(self, arch, needs_psum, density):
        rng = np.random.default_rng(7)
        level2 = self._random_level2(rng, 40, 16, density)
        rows = Compressor(arch).compress(level2, needs_psum=needs_psum)
        counts = Compressor(arch).compress_counts(level2, needs_psum=needs_psum)
        assert counts.cycles == rows.cycles
        assert counts.filtered_rows == rows.filtered_rows
        assert counts.total_nonzeros == rows.total_nonzeros
        assert counts.row_ids.tolist() == [row.row_id for row in rows.rows]
        assert counts.row_nonzeros.tolist() == [row.num_nonzeros for row in rows.rows]

    @pytest.mark.parametrize("needs_psum", [True, False])
    @pytest.mark.parametrize("windows", [1, 2, 4])
    @pytest.mark.parametrize("pack_size", [4, 16])
    def test_pack_counts_matches_pack_rows(self, needs_psum, windows, pack_size):
        # pack_size=4 forces oversized rows to split across packs.
        config = ArchConfig(pack_size=pack_size, packer_windows=windows)
        rng = np.random.default_rng(windows * pack_size)
        level2 = self._random_level2(rng, 200, 16, 0.4)
        packer = Packer(config)
        compressed = Compressor(config).compress(level2, needs_psum=needs_psum)
        packed = packer.pack_rows(compressed.rows)
        counts = packer.pack_counts(
            Compressor(config).compress_counts(level2, needs_psum=needs_psum)
        )
        assert counts.num_packs == len(packed.packs)
        assert counts.cycles == packed.cycles
        assert counts.evictions == packed.evictions
        assert counts.weight_units == sum(p.num_weight_units for p in packed.packs)
        assert counts.psum_units == sum(p.num_psum_units for p in packed.packs)
        assert counts.total_units == packed.total_units

    def test_process_pack_counts_matches_process_packs(self, arch):
        rng = np.random.default_rng(11)
        level2 = self._random_level2(rng, 120, 16, 0.3)
        compressed = Compressor(arch).compress(level2, needs_psum=True)
        packed = Packer(arch).pack_rows(compressed.rows)
        counts = Packer(arch).pack_counts(
            Compressor(arch).compress_counts(level2, needs_psum=True)
        )
        processor = L2Processor(arch)
        from_packs = processor.process_packs(packed.packs, output_width=32)
        from_counts = processor.process_pack_counts(counts, output_width=32)
        assert from_counts == from_packs

    def test_process_tile_counts_matches_process_tile(self, arch, small_patterns):
        rng = np.random.default_rng(5)
        tile = (rng.random((64, 8)) < 0.4).astype(np.uint8)
        preprocessor = Preprocessor(arch)
        full = preprocessor.process_tile(tile, small_patterns, needs_psum=True)
        counts = preprocessor.process_tile_counts(tile, small_patterns, needs_psum=True)
        assert counts.cycles == full.cycles
        assert counts.comparisons == full.matcher.comparisons
        assert counts.total_nonzeros == full.compressor.total_nonzeros
        assert counts.packs.num_packs == len(full.packer.packs)
        assert counts.packs.cycles == full.packer.cycles
