"""Durable-fabric tests: sqlite journal, recovery, leases, worker fleet.

Locks down the guarantees of the durable sweep fabric (DESIGN.md,
"Durable fabric"):

* :class:`repro.service.db.ServiceDB` — WAL mode, fsync-on-commit,
  schema versioning, job/worker/lease journaling round-trips.
* Boot recovery — terminal jobs replay from the journal (same id,
  payload and record keys), queued and orphaned *running* jobs
  re-enqueue and complete; the id counter never reuses sequence
  numbers across incarnations.
* The lease state machine — grant, heartbeat renewal, TTL expiry with
  requeue, explicit failure, validated + idempotent ingest, and the
  local-fallback paths (no workers, fleet died, failure budget burned).
* The wire round-trip — ``SweepPoint.to_dict``/``from_dict`` preserve
  cache keys exactly, which is what lets a worker verify a lease.
* End-to-end crash recovery (slow, subprocess): ``kill -9`` a worker
  mid-unit and the job still completes with records byte-identical to
  a single-process serial run; SIGKILL the *server* mid-job and the
  restarted process recovers the same job id to ``done`` with
  byte-identical records.
* The satellites: ``GET /jobs`` filtering + pagination and audit-log
  size rotation.
"""

from __future__ import annotations

import json
import os
import signal
import sqlite3
import subprocess
import sys
import threading
import time
from contextlib import contextmanager
from pathlib import Path

import pytest

import repro
import repro.service.fleet as fleet_module
from repro.experiments.common import TINY
from repro.experiments.fig7 import run_fig7
from repro.experiments.fig12 import run_fig12
from repro.runner import ArtifactStore, ResultCache, SweepEngine, SweepPoint, WorkloadSpec
from repro.service import (
    DONE,
    QUEUED,
    RUNNING,
    AuditLog,
    FleetCoordinator,
    FleetError,
    FleetWorker,
    JobRequest,
    JobService,
    RetryPolicy,
    SchemaMismatch,
    ServiceClient,
    ServiceDB,
    ServiceError,
    UnknownWorker,
    serve,
)

FAST_RETRY = RetryPolicy(attempts=2, base_delay=0.01, max_delay=0.02, jitter=0.0)


def tiny_spec(model: str = "vgg16", dataset: str = "cifar10") -> WorkloadSpec:
    return WorkloadSpec(model=model, dataset=dataset, batch_size=2, num_steps=2)


def tiny_point(**overrides) -> SweepPoint:
    params = {
        "workload": tiny_spec(),
        "arch": TINY.arch_config(),
        "phi": TINY.phi_config(),
    }
    params.update(overrides)
    return SweepPoint(**params)


def canonical(records: dict[str, dict]) -> dict[str, bytes]:
    """Records as canonical JSON bytes, for byte-identity comparisons."""
    return {
        key: json.dumps(record, sort_keys=True).encode()
        for key, record in records.items()
    }


def sample_row(request: JobRequest, *, job_id="job-000001", seq=1, status=QUEUED):
    """A journal row as ``ServiceDB.save_job`` expects it."""
    return {
        "id": job_id,
        "seq": seq,
        "key": request.key,
        "status": status,
        "request": request.to_dict(),
        "error": None,
        "payload": None,
        "record_keys": [],
        "created": time.time(),
        "started": time.time() if status == RUNNING else None,
        "finished": None,
    }


@contextmanager
def served(tmp_path, *, name="svc", db=True, lease_ttl=10.0, workers=2):
    """A live in-process service (cache + store + optional journal)."""
    engine = SweepEngine(
        cache=ResultCache(tmp_path / f"{name}-cache"),
        store=ArtifactStore(tmp_path / f"{name}-store"),
    )
    journal = ServiceDB(tmp_path / f"{name}-cache" / "service.db") if db else None
    service = JobService(engine, workers=workers, db=journal, lease_ttl=lease_ttl)
    server = serve(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield ServiceClient(server.url, retry=FAST_RETRY), service, server
    finally:
        service.drain()
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


# --------------------------------------------------------------------- #
# ServiceDB
# --------------------------------------------------------------------- #
class TestServiceDB:
    def test_job_rows_round_trip_and_delete(self, tmp_path):
        db = ServiceDB(tmp_path / "svc.db")
        request = JobRequest(experiment="fig12", scale="tiny")
        row = sample_row(request)
        db.save_job(row)
        db.save_job({**row, "status": DONE, "payload": {"x": 1}, "record_keys": ["a" * 64]})
        (loaded,) = db.load_jobs()
        assert loaded["status"] == DONE
        assert loaded["payload"] == {"x": 1}
        assert loaded["record_keys"] == ["a" * 64]
        assert loaded["request"] == request.to_dict()
        assert db.max_job_seq() == 1
        db.delete_job(row["id"])
        assert db.load_jobs() == []
        db.close()

    def test_wal_mode_and_full_sync_are_active(self, tmp_path):
        db = ServiceDB(tmp_path / "svc.db")
        assert db._conn.execute("PRAGMA journal_mode").fetchone()[0] == "wal"
        # 2 == FULL (sqlite numeric pragma value)
        assert db._conn.execute("PRAGMA synchronous").fetchone()[0] == 2
        db.close()

    def test_reopen_preserves_rows_and_schema(self, tmp_path):
        path = tmp_path / "svc.db"
        request = JobRequest(experiment="fig12", scale="tiny")
        with ServiceDB(path) as db:
            db.save_job(sample_row(request))
            db.save_worker("worker-abc", "alive")
            db.lease_event("unit-000001", "worker-abc", "granted", points=3)
        with ServiceDB(path) as db:
            assert len(db.load_jobs()) == 1
            (worker,) = db.load_workers()
            assert worker["id"] == "worker-abc" and worker["state"] == "alive"
            (event,) = db.lease_events()
            assert event["event"] == "granted"
            assert event["detail"] == {"points": 3}

    def test_schema_mismatch_refuses_to_open(self, tmp_path):
        path = tmp_path / "svc.db"
        ServiceDB(path).close()
        conn = sqlite3.connect(str(path))
        conn.execute("UPDATE meta SET value = '999' WHERE key = 'schema'")
        conn.commit()
        conn.close()
        with pytest.raises(SchemaMismatch):
            ServiceDB(path)

    def test_concurrent_writers_do_not_corrupt(self, tmp_path):
        db = ServiceDB(tmp_path / "svc.db")
        request = JobRequest(experiment="fig12", scale="tiny")
        barrier = threading.Barrier(4)

        def hammer(i: int) -> None:
            barrier.wait()
            for j in range(25):
                db.save_job(sample_row(request, job_id=f"job-{i:03d}{j:03d}", seq=i * 100 + j))
                db.lease_event(f"unit-{i}", None, "granted")

        threads = [threading.Thread(target=hammer, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(db.load_jobs()) == 100
        assert len(db.lease_events()) == 100
        db.close()


# --------------------------------------------------------------------- #
# Wire round-trip
# --------------------------------------------------------------------- #
class TestPointSerialization:
    def test_to_dict_round_trips_through_json_preserving_cache_key(self):
        points = [
            tiny_point(),
            tiny_point(label="labelled"),
            tiny_point(accelerator="sato", phi=None),
            tiny_point(workload=WorkloadSpec.random(0.3, seed=7)),
            tiny_point(buffer_scale=0.5),
        ]
        for point in points:
            wire = json.loads(json.dumps(point.to_dict()))
            rebuilt = SweepPoint.from_dict(wire)
            assert rebuilt == point
            assert rebuilt.cache_key() == point.cache_key()
            assert rebuilt.label == point.label


# --------------------------------------------------------------------- #
# Lease state machine (in-process coordinator)
# --------------------------------------------------------------------- #
VALID_STUB = {"stub": True}


@pytest.fixture
def accept_records(monkeypatch):
    """Treat any dict as a valid record (protocol-level tests only)."""
    monkeypatch.setattr(fleet_module, "validate_record", lambda record: [])


class TestFleetCoordinator:
    def _dispatch_async(self, coord, points_by_key):
        holder: dict[str, dict] = {}

        def run() -> None:
            holder.update(coord.dispatch(points_by_key))

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        return holder, thread

    def _lease_until(self, coord, worker_id, timeout=5.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            grant = coord.lease(worker_id)
            if grant is not None:
                return grant
            time.sleep(0.02)
        raise AssertionError("no lease granted within timeout")

    def test_dispatch_with_no_workers_returns_nothing(self):
        coord = FleetCoordinator(lease_ttl=1.0)
        point = tiny_point()
        assert coord.dispatch({point.cache_key(): point}) == {}

    def test_lease_ingest_completes_dispatch(self, tmp_path, accept_records):
        cache = ResultCache(tmp_path / "cache")
        coord = FleetCoordinator(cache=cache, lease_ttl=5.0)
        worker = coord.register()["worker_id"]
        point = tiny_point()
        key = point.cache_key()
        holder, thread = self._dispatch_async(coord, {key: point})
        grant = self._lease_until(coord, worker)
        assert grant["keys"] == [key]
        assert grant["points"] == [point.to_dict()]
        result = coord.ingest(worker, grant["id"], {key: VALID_STUB})
        assert result["done"] is True and result["ingested"] == 1
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert holder == {key: VALID_STUB}
        # Write-through: the record is durable before the engine settles.
        assert cache.get(key) == VALID_STUB

    def test_duplicate_ingest_is_idempotent(self, accept_records):
        coord = FleetCoordinator(lease_ttl=5.0)
        worker = coord.register()["worker_id"]
        # Same (workload, phi) → one unit with two keys.
        p1, p2 = tiny_point(), tiny_point(buffer_scale=0.5)
        k1, k2 = p1.cache_key(), p2.cache_key()
        holder, thread = self._dispatch_async(coord, {k1: p1, k2: p2})
        grant = self._lease_until(coord, worker)
        assert set(grant["keys"]) == {k1, k2}
        first = coord.ingest(worker, grant["id"], {k1: VALID_STUB})
        assert first == {"ingested": 1, "duplicates": 0, "done": False}
        second = coord.ingest(worker, grant["id"], {k1: VALID_STUB, k2: VALID_STUB})
        assert second == {"ingested": 1, "duplicates": 1, "done": True}
        thread.join(timeout=5)
        assert holder == {k1: VALID_STUB, k2: VALID_STUB}

    def test_ingest_rejects_unexpected_keys_and_invalid_records(self):
        coord = FleetCoordinator(lease_ttl=5.0)
        worker = coord.register()["worker_id"]
        point = tiny_point()
        key = point.cache_key()
        holder, thread = self._dispatch_async(coord, {key: point})
        grant = self._lease_until(coord, worker)
        with pytest.raises(FleetError, match="unexpected record key"):
            coord.ingest(worker, grant["id"], {"f" * 64: VALID_STUB})
        with pytest.raises(FleetError, match="rejected ingest"):
            # A real validate_record run: garbage fails the v3 schema.
            coord.ingest(worker, grant["id"], {key: {"not": "a record"}})
        with pytest.raises(UnknownWorker):
            coord.ingest("worker-bogus", grant["id"], {key: VALID_STUB})
        coord.drain()
        thread.join(timeout=5)
        assert holder == {}

    def test_expired_lease_requeues_to_next_worker(self, tmp_path, accept_records):
        audit = AuditLog(tmp_path / "audit.jsonl")
        db = ServiceDB(tmp_path / "svc.db")
        coord = FleetCoordinator(lease_ttl=0.3, audit=audit, db=db)
        dead = coord.register()["worker_id"]
        point = tiny_point()
        key = point.cache_key()
        holder, thread = self._dispatch_async(coord, {key: point})
        grant = self._lease_until(coord, dead)
        # `dead` never heartbeats and never ingests: its lease must
        # lapse and the unit must be re-granted to the live worker.
        # Register `live` *before* the expiry so the fleet never empties
        # (an empty fleet would withdraw the unit to local fallback);
        # polling lease() keeps `live`'s own registration renewed.
        live = coord.register()["worker_id"]
        regrant = self._lease_until(coord, live, timeout=10.0)
        assert regrant["id"] == grant["id"]
        coord.ingest(live, regrant["id"], {key: VALID_STUB})
        thread.join(timeout=5)
        assert holder == {key: VALID_STUB}
        events = [entry["event"] for entry in audit.entries()]
        assert "lease.granted" in events
        assert "lease.expired" in events
        assert "unit.requeued" in events
        assert "lease.completed" in events
        journal = [event["event"] for event in db.lease_events()]
        assert journal.count("granted") == 2
        assert "expired" in journal and "completed" in journal
        db.close()

    def test_fleet_dying_entirely_falls_back_to_local(self):
        coord = FleetCoordinator(lease_ttl=0.2)
        worker = coord.register()["worker_id"]
        point = tiny_point()
        key = point.cache_key()
        holder, thread = self._dispatch_async(coord, {key: point})
        self._lease_until(coord, worker)
        # The only worker dies holding the lease: expiry requeues the
        # unit, and with zero live workers dispatch must give it back
        # to the engine instead of waiting forever.
        thread.join(timeout=10)
        assert not thread.is_alive(), "dispatch wedged on a dead fleet"
        assert holder == {}

    def test_failure_budget_withdraws_unit(self, accept_records):
        coord = FleetCoordinator(lease_ttl=5.0, max_unit_failures=2)
        worker = coord.register()["worker_id"]
        point = tiny_point()
        key = point.cache_key()
        holder, thread = self._dispatch_async(coord, {key: point})
        for _ in range(2):
            grant = self._lease_until(coord, worker)
            coord.fail(worker, grant["id"], "synthetic failure")
        thread.join(timeout=10)
        assert not thread.is_alive(), "dispatch wedged on a poisoned unit"
        assert holder == {}

    def test_heartbeat_renews_leases_past_ttl(self, accept_records):
        coord = FleetCoordinator(lease_ttl=0.3)
        worker = coord.register()["worker_id"]
        point = tiny_point()
        key = point.cache_key()
        holder, thread = self._dispatch_async(coord, {key: point})
        grant = self._lease_until(coord, worker)
        for _ in range(4):
            time.sleep(0.15)
            coord.heartbeat(worker)
        # 0.6s > ttl elapsed, but heartbeats kept the lease alive.
        result = coord.ingest(worker, grant["id"], {key: VALID_STUB})
        assert result["done"] is True
        thread.join(timeout=5)
        assert holder == {key: VALID_STUB}


class TestEngineDispatcherHook:
    def test_remote_records_settle_like_local_ones(self, tmp_path, monkeypatch):
        simulated: list[str] = []

        def fake_simulate(point):
            simulated.append(point.cache_key())
            return {"schema": 3, "key": point.cache_key()}

        import repro.runner.engine as engine_module

        monkeypatch.setattr(engine_module, "simulate_point", fake_simulate)
        points = [tiny_point(), tiny_point(phi=TINY.phi_config(num_patterns=8))]
        remote_key = points[0].cache_key()
        remote_record = {"schema": 3, "key": remote_key, "remote": True}

        class OneShotDispatcher:
            def dispatch(self, reps):
                assert set(reps) == {p.cache_key() for p in points}
                return {remote_key: remote_record}

        cache = ResultCache(tmp_path / "cache")
        engine = SweepEngine(cache=cache, dispatcher=OneShotDispatcher())
        records = engine.run(points)
        assert records[0] == remote_record
        assert simulated == [points[1].cache_key()]
        assert engine.stats.remote_hits == 1
        assert engine.stats.executed == 2  # remote counts as executed
        assert cache.get(remote_key) == remote_record

    def test_raising_dispatcher_is_ignored(self, monkeypatch):
        import repro.runner.engine as engine_module

        monkeypatch.setattr(
            engine_module,
            "simulate_point",
            lambda point: {"schema": 3, "key": point.cache_key()},
        )

        class BrokenDispatcher:
            def dispatch(self, reps):
                raise RuntimeError("fleet on fire")

        engine = SweepEngine(dispatcher=BrokenDispatcher())
        point = tiny_point()
        assert engine.run([point])[0]["key"] == point.cache_key()
        assert engine.stats.remote_hits == 0


# --------------------------------------------------------------------- #
# Boot recovery
# --------------------------------------------------------------------- #
class TestServiceRecovery:
    def test_terminal_jobs_replay_and_counter_resumes(self, tmp_path):
        path = tmp_path / "svc.db"
        cache = ResultCache(tmp_path / "cache")
        store = ArtifactStore(tmp_path / "store")
        request = JobRequest(experiment="fig12", scale="tiny")

        service = JobService(
            SweepEngine(cache=cache, store=store), workers=1, db=ServiceDB(path)
        )
        job, _ = service.submit(request)
        assert job.wait(timeout=300)
        assert job.status == DONE
        payload, keys = job.payload, sorted(job._record_keys)
        service.drain()

        revived = JobService(
            SweepEngine(cache=cache, store=store), workers=1, db=ServiceDB(path)
        )
        try:
            restored = revived.get(job.id)
            assert restored is not None and restored is not job
            assert restored.status == DONE
            assert restored.payload == payload
            assert sorted(restored._record_keys) == keys
            # Terminal jobs are not dedup targets; a resubmit is a fresh
            # job whose seq continues past the journaled maximum.
            fresh, deduplicated = revived.submit(request)
            assert not deduplicated
            assert fresh.seq == job.seq + 1
            assert fresh.wait(timeout=300) and fresh.status == DONE
        finally:
            revived.drain()

    def test_queued_and_orphaned_running_jobs_rerun_to_done(self, tmp_path):
        path = tmp_path / "svc.db"
        request = JobRequest(experiment="fig12", scale="tiny")
        with ServiceDB(path) as db:
            db.save_job(sample_row(request, job_id="job-000001", seq=1, status=RUNNING))
            db.save_job(sample_row(request, job_id="job-000002", seq=2, status=QUEUED))
        audit = AuditLog(tmp_path / "audit.jsonl")
        service = JobService(
            SweepEngine(
                cache=ResultCache(tmp_path / "cache"),
                store=ArtifactStore(tmp_path / "store"),
            ),
            workers=1,
            db=ServiceDB(path),
            audit=audit,
        )
        try:
            for job_id in ("job-000001", "job-000002"):
                job = service.get(job_id)
                assert job is not None
                assert job.wait(timeout=300), f"{job_id} never finished"
                assert job.status == DONE
            events = [entry["event"] for entry in audit.entries()]
            assert "service.recovered" in events
            assert "job.requeued" in events  # the orphaned RUNNING row
        finally:
            # Joining the dispatchers (drain) is what guarantees the
            # final journal upserts landed before we inspect them.
            service.drain()
        with ServiceDB(path) as db:
            statuses = {row["id"]: row["status"] for row in db.load_jobs()}
        assert statuses["job-000001"] == DONE
        assert statuses["job-000002"] == DONE

    def test_unrecoverable_rows_are_dropped_not_fatal(self, tmp_path):
        path = tmp_path / "svc.db"
        request = JobRequest(experiment="fig12", scale="tiny")
        row = sample_row(request, job_id="job-000001", seq=1, status=QUEUED)
        row["request"] = {"experiment": "vanished-experiment", "scale": "tiny"}
        with ServiceDB(path) as db:
            db.save_job(row)
        audit = AuditLog(tmp_path / "audit.jsonl")
        service = JobService(
            SweepEngine(), workers=1, db=ServiceDB(path), audit=audit
        )
        try:
            assert service.get("job-000001") is None
            events = [entry["event"] for entry in audit.entries()]
            assert "job.dropped" in events
        finally:
            service.drain()
        with ServiceDB(path) as db:
            assert db.load_jobs() == []


# --------------------------------------------------------------------- #
# HTTP surface: worker protocol, /jobs index, fleet e2e (in-process)
# --------------------------------------------------------------------- #
class TestJobsIndexEndpoint:
    def test_filtering_and_pagination(self, tmp_path):
        with served(tmp_path) as (client, service, server):
            done = client.run("fig12", scale="tiny", timeout=300)
            assert done["status"] == DONE
            page = client.job_page()
            assert page["total"] == 1 and len(page["jobs"]) == 1
            assert page["jobs"][0]["id"] == done["id"]
            # Summaries never carry payloads (listing stays O(jobs)).
            assert "payload" not in page["jobs"][0]
            assert client.jobs(status=DONE)[0]["id"] == done["id"]
            assert client.jobs(status="failed") == []
            empty = client.job_page(offset=1, limit=10)
            assert empty["jobs"] == [] and empty["total"] == 1
            with pytest.raises(ServiceError) as excinfo:
                client.jobs(status="bogus")
            assert excinfo.value.status == 400
            with pytest.raises(ServiceError) as excinfo:
                client.job_page(offset=-1)
            assert excinfo.value.status == 400

    def test_limit_zero_returns_count_only(self, tmp_path):
        with served(tmp_path) as (client, service, server):
            client.run("fig12", scale="tiny", timeout=300)
            page = client.job_page(limit=0)
            assert page["jobs"] == [] and page["total"] == 1


class TestFleetEndToEndInProcess:
    def test_remote_run_matches_serial_and_hides_the_fleet(self, tmp_path):
        with served(tmp_path, lease_ttl=5.0) as (client, service, server):
            stop = threading.Event()
            worker = FleetWorker(
                server.url,
                store=ArtifactStore(tmp_path / "svc-store"),
                poll=0.05,
            )
            thread = threading.Thread(
                target=worker.run, args=(stop,), daemon=True
            )
            thread.start()
            try:
                job = client.run("fig12", scale="tiny", timeout=300)
                assert job["status"] == DONE
                # The fleet actually did the work...
                assert service.engine.stats.remote_hits > 0
                assert service.fleet.counts()["units_completed"] > 0
                # ...but the client-visible views never say so: progress
                # counts remote execution as plain "executed".
                assert "worker" not in json.dumps(job["progress"])
                # Remote completions surface as plain "executed" — the
                # job view has no remote/local split at all.
                assert job["progress"]["executed"] > 0
                assert "remote_hits" not in job["progress"]
                records = canonical(client.records_for(job))
            finally:
                stop.set()
                thread.join(timeout=10)

        serial_cache = ResultCache(tmp_path / "serial-cache")
        with SweepEngine(
            cache=serial_cache, store=ArtifactStore(tmp_path / "serial-store")
        ) as serial_engine:
            run_fig12(TINY, engine=serial_engine)
        serial = canonical(serial_cache.snapshot())
        assert records == {key: serial[key] for key in records}
        assert set(records) <= set(serial)
        assert records, "remote job returned no records"

    def test_worker_re_registers_after_server_side_amnesia(self, tmp_path):
        with served(tmp_path, lease_ttl=0.5) as (client, service, server):
            contract = client.register_worker()
            worker_id = contract["worker_id"]
            assert client.worker_heartbeat(worker_id)["ok"] is True
            # Silence past the TTL: the server forgets the worker, and
            # the protocol says so with a 404 + unknown_worker marker.
            time.sleep(0.7)
            with pytest.raises(ServiceError) as excinfo:
                client.worker_heartbeat(worker_id)
            assert excinfo.value.status == 404
            assert excinfo.value.details.get("unknown_worker") is True
            with pytest.raises(ServiceError) as excinfo:
                client.lease(worker_id)
            assert excinfo.value.status == 404
            # Re-registration mints a fresh identity.
            again = client.register_worker()
            assert again["worker_id"] != worker_id
            assert client.worker_heartbeat(again["worker_id"])["ok"] is True

    def test_healthz_reports_fleet_and_journal(self, tmp_path):
        with served(tmp_path) as (client, service, server):
            health = client.health()
            assert health["fleet"]["workers"] == 0
            assert health["db"].endswith("service.db")
            client.register_worker()
            assert client.health()["fleet"]["workers"] == 1


# --------------------------------------------------------------------- #
# Audit rotation satellite
# --------------------------------------------------------------------- #
class TestAuditRotation:
    def test_rotation_keeps_one_parseable_generation(self, tmp_path):
        log = AuditLog(tmp_path / "audit.jsonl", max_bytes=600)
        for i in range(50):
            log.record("spam.event", index=i, padding="x" * 40)
        log.close()
        assert log.path.exists() and log.rotated_path.exists()
        assert log.path.stat().st_size <= 600
        assert log.rotated_path.stat().st_size <= 600
        current = list(log.entries())
        combined = list(log.entries(include_rotated=True))
        assert len(combined) > len(current) > 0
        # Every surviving line parses, rotation never tears a line.
        indices = [entry["index"] for entry in combined]
        assert indices == sorted(indices)
        assert indices[-1] == 49

    def test_unbounded_by_default(self, tmp_path):
        log = AuditLog(tmp_path / "audit.jsonl")
        for i in range(50):
            log.record("spam.event", index=i, padding="x" * 40)
        log.close()
        assert not log.rotated_path.exists()
        assert len(list(log.entries())) == 50

    def test_restart_resumes_size_accounting(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        first = AuditLog(path, max_bytes=300)
        first.record("one", padding="x" * 100)
        first.close()
        second = AuditLog(path, max_bytes=300)
        second.record("two", padding="x" * 100)
        second.record("three", padding="x" * 100)
        second.close()
        assert second.rotated_path.exists(), "restart lost the size counter"


# --------------------------------------------------------------------- #
# Subprocess end-to-end crash recovery (the acceptance tests)
# --------------------------------------------------------------------- #
def _env(tmp_path):
    return {
        **os.environ,
        "PYTHONUNBUFFERED": "1",
        "PYTHONPATH": str(Path(repro.__file__).resolve().parents[1]),
    }


def _spawn_server(tmp_path, *extra):
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.service",
            "serve",
            "--port",
            "0",
            "--jobs",
            "1",
            "--cache-dir",
            str(tmp_path / "cache"),
            "--store-dir",
            str(tmp_path / "store"),
            "--audit-log",
            str(tmp_path / "audit.jsonl"),
            "--lease-ttl",
            "2.0",
            "--quiet",
            *extra,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        cwd=str(tmp_path),
        env=_env(tmp_path),
    )
    try:
        for line in process.stdout:
            if line.startswith("serving on "):
                return process, line.split()[-1]
        raise AssertionError(f"service never reported its URL (rc={process.poll()})")
    except BaseException:
        process.kill()
        process.wait()
        raise


def _spawn_worker(tmp_path, url, *extra):
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.service",
            "worker",
            "--server",
            url,
            "--store-dir",
            str(tmp_path / "store"),
            "--poll",
            "0.2",
            "--quiet",
            *extra,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        cwd=str(tmp_path),
        env=_env(tmp_path),
    )
    try:
        for line in process.stdout:
            if line.startswith("worker ") and " registered " in line:
                return process, line.split()[1]
        raise AssertionError(f"worker never registered (rc={process.poll()})")
    except BaseException:
        process.kill()
        process.wait()
        raise


def _wait_for_audit_event(audit_path, predicate, timeout=60.0):
    deadline = time.monotonic() + timeout
    log = AuditLog(audit_path)
    while time.monotonic() < deadline:
        for entry in log.entries():
            if predicate(entry):
                return entry
        time.sleep(0.1)
    raise AssertionError("audit event never appeared")


def _serial_fig7_records(tmp_path):
    serial_cache = ResultCache(tmp_path / "serial-cache")
    with SweepEngine(
        cache=serial_cache, store=ArtifactStore(tmp_path / "serial-store")
    ) as serial_engine:
        run_fig7(TINY, engine=serial_engine)
    return canonical(serial_cache.snapshot())


@pytest.mark.slow
class TestWorkerKilledMidSweep:
    """The ROADMAP acceptance test: kill -9 a worker, lose nothing."""

    def test_job_completes_with_byte_identical_records(self, tmp_path):
        server = victim = survivor = None
        try:
            server, url = _spawn_server(tmp_path)
            # The victim drags before simulating: killing it is
            # guaranteed to strike mid-unit, with a lease held.
            victim, victim_id = _spawn_worker(tmp_path, url, "--drag", "120")
            survivor, _ = _spawn_worker(tmp_path, url)

            client = ServiceClient(url, retry=FAST_RETRY)
            submitted = client.submit("fig7", scale="tiny")

            _wait_for_audit_event(
                tmp_path / "audit.jsonl",
                lambda entry: entry["event"] == "lease.granted"
                and entry.get("worker") == victim_id,
                timeout=120,
            )
            os.kill(victim.pid, signal.SIGKILL)
            victim.wait(timeout=30)

            job = client.wait_for(
                submitted["id"],
                timeout=600,
                request={"experiment": "fig7", "scale": "tiny"},
            )
            assert job["status"] == DONE
            records = canonical(client.records_for(job))

            # The audit trail shows the crash being detected + healed.
            events = [
                entry["event"]
                for entry in AuditLog(tmp_path / "audit.jsonl").entries()
            ]
            assert "lease.expired" in events
            assert "unit.requeued" in events
        finally:
            for process in (victim, survivor):
                if process is not None and process.poll() is None:
                    process.kill()
                    process.wait(timeout=30)
            if server is not None:
                server.kill()
                server.wait(timeout=30)

        serial = _serial_fig7_records(tmp_path)
        assert set(records) == set(serial)
        assert records == serial


@pytest.mark.slow
class TestServerKilledMidSweep:
    """SIGKILL the server mid-job; the restart recovers the same job id."""

    def test_restarted_server_recovers_job_to_done(self, tmp_path):
        server = None
        try:
            server, url = _spawn_server(tmp_path)
            client = ServiceClient(url, retry=FAST_RETRY)
            submitted = client.submit("fig7", scale="tiny")
            job_id = submitted["id"]
            # Let it start running, then murder the server process.
            time.sleep(1.0)
        finally:
            if server is not None:
                server.kill()
                server.wait(timeout=30)

        server = None
        try:
            server, url = _spawn_server(tmp_path)
            client = ServiceClient(url, retry=FAST_RETRY)
            # The SAME job id survived the crash: recovered from the
            # journal, requeued, and run to completion — no resubmit.
            job = client.wait_for(job_id, timeout=600)
            assert job["status"] == DONE
            assert job["id"] == job_id
            records = canonical(client.records_for(job))
            # The jobs index sees it too (satellite integration).
            listed = client.jobs(status=DONE)
            assert job_id in {entry["id"] for entry in listed}
            shutdown_ok = True
            try:
                client.shutdown()
            except ServiceError:
                shutdown_ok = False
            if shutdown_ok:
                server.wait(timeout=60)
        finally:
            if server is not None and server.poll() is None:
                server.kill()
                server.wait(timeout=30)

        serial = _serial_fig7_records(tmp_path)
        assert set(records) == set(serial)
        assert records == serial
