"""Tests for the temporal workload family and trace-driven simulation.

Covers the recurrent spiking cell, the SpikingRNN model zoo entry, the
per-timestep workload unrolling, trace ingest (npz -> store -> spec) and
the end-to-end `temporal` experiment at the TINY tier.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

import repro.runner.engine as engine_module
from repro.experiments.common import TINY
from repro.runner import ArtifactStore, SweepEngine, SweepPoint, WorkloadSpec
from repro.runner.cli import load_trace_npz
from repro.runner.store import KIND_TRACE, KIND_WORKLOAD
from repro.snn import RecurrentSpikingCell, build_spiking_rnn
from repro.workloads import (
    extract_temporal_workload,
    extract_workload,
    generate_temporal_workload,
    generate_workload,
    split_timestep_name,
    temporal_density_profile,
    timestep_layer_name,
)
from repro.workloads.generator import generate_random_workload


@pytest.fixture(scope="module")
def rnn_workload():
    return generate_workload("spikingrnn", "speechcmd", batch_size=2, num_steps=3)


@pytest.fixture(scope="module")
def rnn_temporal_workload():
    return generate_temporal_workload(
        "spikingrnn", "speechcmd", batch_size=2, num_steps=3
    )


class TestRecurrentSpikingCell:
    def test_state_accumulates_and_resets(self, rng):
        cell = RecurrentSpikingCell(8, 16, rng=rng)
        x = (rng.random((4, 8)) < 0.5).astype(np.float64)
        first = cell.forward(x)
        assert first.shape == (4, 16)
        assert set(np.unique(first)) <= {0.0, 1.0}
        cell.forward(x)
        assert cell._hidden is not None
        cell.reset_state()
        assert cell._hidden is None
        assert np.array_equal(cell.forward(x), first)

    def test_recurrent_gemm_input_is_binary(self, rng):
        from repro.snn.network import SpikingNetwork

        cell = RecurrentSpikingCell(8, 16, name="cell", rng=rng)
        network = SpikingNetwork([cell], num_steps=2)
        train = (rng.random((2, 4, 8)) < 0.5).astype(np.float64)
        _, records = network.record_activations(train, pre_encoded=True)
        record = records["cell.recurrent"]
        assert len(record.matrices) == 2
        for matrix in record.matrices:
            assert set(np.unique(matrix)) <= {0.0, 1.0}

    def test_parameters_cover_both_projections(self, rng):
        cell = RecurrentSpikingCell(8, 16, name="cell", rng=rng)
        params = cell.parameters()
        assert any(key.startswith("cell.input.") for key in params)
        assert any(key.startswith("cell.recurrent.") for key in params)

    def test_batch_size_change_resets_hidden(self, rng):
        cell = RecurrentSpikingCell(8, 16, rng=rng)
        cell.forward((rng.random((4, 8)) < 0.5).astype(np.float64))
        out = cell.forward((rng.random((2, 8)) < 0.5).astype(np.float64))
        assert out.shape == (2, 16)


class TestSpikingRNNWorkload:
    def test_model_builds_and_runs(self):
        network = build_spiking_rnn(num_features=16, hidden_sizes=(8,), num_steps=2)
        train = (np.random.default_rng(0).random((2, 3, 16)) < 0.3).astype(float)
        logits = network.forward(train, pre_encoded=True)
        assert logits.shape == (3, 10)

    def test_workload_layers_are_binary(self, rnn_workload):
        names = rnn_workload.layer_names()
        assert "rnn0.input" in names and "rnn0.recurrent" in names
        for layer in rnn_workload:
            assert set(np.unique(layer.activations)) <= {0, 1}


class TestTemporalUnrolling:
    def test_name_helpers_roundtrip(self):
        assert timestep_layer_name("fc1", 2) == "fc1@t2"
        assert split_timestep_name("fc1@t2") == ("fc1", 2)
        assert split_timestep_name("fc1") == ("fc1", None)
        assert split_timestep_name("fc1@tx") == ("fc1@tx", None)
        with pytest.raises(ValueError):
            timestep_layer_name("fc1", -1)

    def test_unrolled_steps_concatenate_to_stacked(self):
        network = build_spiking_rnn(num_features=16, hidden_sizes=(8,), num_steps=3)
        inputs = (np.random.default_rng(1).random((3, 4, 16)) < 0.3).astype(float)
        stacked = extract_workload(network, inputs, pre_encoded=True)
        unrolled = extract_temporal_workload(network, inputs, pre_encoded=True)
        by_base: dict[str, list[np.ndarray]] = {}
        for layer in unrolled:
            base, step = split_timestep_name(layer.name)
            assert step is not None
            by_base.setdefault(base, []).append(layer.activations)
        for layer in stacked:
            assert np.array_equal(
                np.concatenate(by_base[layer.name], axis=0), layer.activations
            )

    def test_generated_temporal_names_and_profile(self, rnn_temporal_workload):
        steps = {split_timestep_name(n)[1] for n in rnn_temporal_workload.layer_names()}
        assert steps == {0, 1, 2}
        profile = temporal_density_profile(rnn_temporal_workload)
        assert sorted(profile) == [0, 1, 2]
        assert all(0.0 <= value <= 1.0 for value in profile.values())

    def test_temporal_spec_simulates_end_to_end(self):
        spec = WorkloadSpec(
            model="spikingrnn",
            dataset="speechcmd",
            batch_size=2,
            num_steps=2,
            temporal=True,
        )
        point = SweepPoint(workload=spec, arch=TINY.arch_config(), phi=TINY.phi_config())
        record = SweepEngine().run([point])[0]
        assert engine_module.validate_record(record) == []
        assert all(
            split_timestep_name(layer["name"])[1] is not None
            for layer in record["layers"]
        )


class TestTraceIngest:
    def _write_trace(self, path, seed=0):
        workload = generate_random_workload(density=0.3, m=32, k=16, n=8, seed=seed)
        arrays = {}
        for layer in workload:
            arrays[f"act:{layer.name}"] = layer.activations
            arrays[f"weight:{layer.name}"] = layer.weights
        np.savez(path, **arrays)
        return workload

    def test_npz_roundtrip_is_bit_exact(self, tmp_path):
        original = self._write_trace(tmp_path / "dump.npz")
        loaded = load_trace_npz(tmp_path / "dump.npz", model="mytrace")
        assert loaded.layer_names() == original.layer_names()
        for a, b in zip(original, loaded):
            assert np.array_equal(a.activations, b.activations)
            assert np.array_equal(a.weights, b.weights)

    def test_corrupt_archive_rejected(self, tmp_path):
        bad = tmp_path / "bad.npz"
        bad.write_bytes(b"this is not an npz archive")
        with pytest.raises(ValueError, match="cannot read trace archive"):
            load_trace_npz(bad, model="x")

    def test_unpaired_arrays_rejected(self, tmp_path):
        np.savez(
            tmp_path / "odd.npz",
            **{"act:fc1": np.zeros((2, 4), dtype=np.uint8), "weight:fc2": np.zeros((4, 2))},
        )
        with pytest.raises(ValueError, match="malformed"):
            load_trace_npz(tmp_path / "odd.npz", model="x")

    def test_non_binary_trace_rejected(self, tmp_path):
        np.savez(
            tmp_path / "dense.npz",
            **{"act:fc1": np.full((2, 4), 3), "weight:fc1": np.zeros((4, 2))},
        )
        with pytest.raises(ValueError, match="trace layer 'fc1'"):
            load_trace_npz(tmp_path / "dense.npz", model="x")

    def test_store_roundtrip_and_spec_validation(self, tmp_path):
        store = ArtifactStore(tmp_path)
        workload = self._write_trace(tmp_path / "dump.npz")
        store.put(KIND_TRACE, store.trace_key("mytrace"), workload)
        loaded = ArtifactStore(tmp_path).get(KIND_TRACE, store.trace_key("mytrace"))
        assert loaded.layer_names() == workload.layer_names()

        spec = WorkloadSpec.from_trace("mytrace")
        assert spec.is_trace and spec.dataset == "trace"
        with pytest.raises(ValueError):
            WorkloadSpec(model="m", dataset="trace")
        with pytest.raises(ValueError):
            WorkloadSpec(model="m", dataset="cifar10", trace="mytrace")
        with pytest.raises(ValueError):
            WorkloadSpec(model="m", dataset="trace", trace="t", temporal=True)

    def test_trace_spec_requires_store(self):
        point = SweepPoint(
            workload=WorkloadSpec.from_trace("nowhere"),
            arch=TINY.arch_config(),
            phi=TINY.phi_config(),
        )
        with pytest.raises(RuntimeError, match="artifact store"):
            SweepEngine().run([point])

    def test_trace_records_byte_identical_across_runs(self, tmp_path):
        store = ArtifactStore(tmp_path)
        workload = self._write_trace(tmp_path / "dump.npz")
        store.put(KIND_TRACE, store.trace_key("mytrace"), workload)
        point = SweepPoint(
            workload=WorkloadSpec.from_trace("mytrace"),
            arch=TINY.arch_config(),
            phi=TINY.phi_config(),
        )
        first = SweepEngine(store=ArtifactStore(tmp_path)).run([point])[0]
        second = SweepEngine(store=ArtifactStore(tmp_path)).run([point])[0]
        assert engine_module.validate_record(first) == []
        assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)

    def test_missing_trace_names_the_import_command(self, tmp_path):
        point = SweepPoint(
            workload=WorkloadSpec.from_trace("ghost"),
            arch=TINY.arch_config(),
            phi=TINY.phi_config(),
        )
        with pytest.raises(RuntimeError, match="trace import"):
            SweepEngine(store=ArtifactStore(tmp_path)).run([point])


class TestStoreCompatLookup:
    def test_v2_artifact_migrates_forward(self, tmp_path):
        store = ArtifactStore(tmp_path)
        workload = generate_random_workload(density=0.3, m=32, k=16, n=8, seed=3)
        payload = {"which": "compat-probe"}
        old_key = store.key(KIND_WORKLOAD, payload, schema=2)
        store.put(KIND_WORKLOAD, old_key, workload)

        fresh = ArtifactStore(tmp_path)
        current_key, found = fresh.lookup(KIND_WORKLOAD, payload)
        assert current_key == fresh.key(KIND_WORKLOAD, payload)
        assert current_key != old_key
        assert found is not None and found.layer_names() == workload.layer_names()
        # The hit was migrated forward under the current-schema key.
        assert fresh.contains(current_key)

    def test_legacy_spec_payload_is_unchanged(self):
        # Pre-temporal specs must serialise exactly as before the schema
        # bump, or the v2-compat store probe could never reproduce old keys.
        data = WorkloadSpec(model="vgg16", dataset="cifar10").to_dict()
        assert "temporal" not in data and "trace" not in data
        temporal = WorkloadSpec(model="m", dataset="cifar10", temporal=True).to_dict()
        assert temporal["temporal"] is True
        trace = WorkloadSpec.from_trace("t").to_dict()
        assert trace["trace"] == "t"
        for payload in (data, temporal, trace):
            assert WorkloadSpec.from_dict(payload).to_dict() == payload

    def test_lookup_miss_returns_none(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key, found = store.lookup(KIND_WORKLOAD, {"which": "absent"})
        assert found is None and key == store.key(KIND_WORKLOAD, {"which": "absent"})


class TestTemporalExperiment:
    def test_tiny_end_to_end(self):
        from repro.experiments.registry import get_experiment
        from repro.report.emitters import build_payload

        spec = get_experiment("temporal")
        assert spec.uses_engine
        result = spec.run("tiny")
        assert result.comparisons and result.comparisons[0].key == "spikingrnn/speechcmd"
        geo = result.geomean_speedup()
        assert set(geo) >= {"phi", "phi_paft", "eyeriss"}
        assert result.comparisons[0].density_by_step
        payload = build_payload(spec, result)
        json.dumps(payload)  # payload must be JSON-serialisable
        assert any("density" in t["title"].lower() for t in payload["tables"])
        assert "formatted" in dir(result) and "geomean" in result.formatted()
