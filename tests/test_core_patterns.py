"""Unit tests for repro.core.patterns."""

import numpy as np
import pytest

from repro.core.patterns import NO_PATTERN, Pattern, PatternSet


class TestPattern:
    def test_basic_properties(self):
        pattern = Pattern(index=1, bits=np.array([1, 0, 1, 1], dtype=np.uint8))
        assert pattern.width == 4
        assert pattern.popcount == 3

    def test_reserved_index_rejected(self):
        with pytest.raises(ValueError):
            Pattern(index=0, bits=np.array([1, 0], dtype=np.uint8))

    def test_hamming_distance(self):
        pattern = Pattern(index=2, bits=np.array([1, 1, 0, 0], dtype=np.uint8))
        assert pattern.hamming_distance(np.array([1, 0, 0, 1])) == 2
        assert pattern.hamming_distance(np.array([1, 1, 0, 0])) == 0

    def test_hamming_distance_shape_mismatch(self):
        pattern = Pattern(index=1, bits=np.array([1, 0], dtype=np.uint8))
        with pytest.raises(ValueError):
            pattern.hamming_distance(np.array([1, 0, 1]))

    def test_equality_and_hash(self):
        a = Pattern(index=1, bits=np.array([1, 0], dtype=np.uint8))
        b = Pattern(index=1, bits=np.array([1, 0], dtype=np.uint8))
        c = Pattern(index=2, bits=np.array([1, 0], dtype=np.uint8))
        assert a == b
        assert hash(a) == hash(b)
        assert a != c


class TestPatternSet:
    @pytest.fixture
    def pattern_set(self):
        return PatternSet(np.array([[1, 0, 1, 0], [0, 1, 1, 0], [1, 1, 1, 1]], dtype=np.uint8))

    def test_sizes(self, pattern_set):
        assert pattern_set.num_patterns == 3
        assert pattern_set.width == 4
        assert len(pattern_set) == 3

    def test_indexing_is_one_based(self, pattern_set):
        assert np.array_equal(pattern_set[1].bits, [1, 0, 1, 0])
        assert np.array_equal(pattern_set[3].bits, [1, 1, 1, 1])

    def test_index_out_of_range(self, pattern_set):
        with pytest.raises(IndexError):
            pattern_set[0]
        with pytest.raises(IndexError):
            pattern_set[4]

    def test_bits_of_no_pattern_is_zero(self, pattern_set):
        assert np.array_equal(pattern_set.bits_of(NO_PATTERN), np.zeros(4))

    def test_iteration_yields_patterns(self, pattern_set):
        patterns = list(pattern_set)
        assert [p.index for p in patterns] == [1, 2, 3]

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            PatternSet(np.array([[0, 2], [1, 0]]))

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValueError):
            PatternSet(np.array([1, 0, 1]))

    def test_compute_pwps(self, pattern_set):
        weights = np.arange(8, dtype=np.float64).reshape(4, 2)
        pwps = pattern_set.compute_pwps(weights)
        assert pwps.shape == (4, 2)  # q + 1 rows
        assert np.array_equal(pwps[0], [0.0, 0.0])
        expected = pattern_set.matrix.astype(float) @ weights
        assert np.allclose(pwps[1:], expected)

    def test_compute_pwps_shape_mismatch(self, pattern_set):
        with pytest.raises(ValueError):
            pattern_set.compute_pwps(np.zeros((3, 2)))

    def test_match_counts(self, pattern_set):
        rows = np.array([[1, 0, 1, 0], [0, 0, 0, 0]], dtype=np.uint8)
        counts = pattern_set.match_counts(rows)
        assert counts.shape == (2, 3)
        assert counts[0, 0] == 0  # identical to pattern 1
        assert counts[1, 2] == 4  # all-zero row vs all-ones pattern

    def test_match_counts_width_mismatch(self, pattern_set):
        with pytest.raises(ValueError):
            pattern_set.match_counts(np.zeros((2, 5), dtype=np.uint8))

    def test_memory_bits(self, pattern_set):
        assert pattern_set.memory_bits() == 12

    def test_matrix_is_read_only(self, pattern_set):
        with pytest.raises(ValueError):
            pattern_set.matrix[0, 0] = 1

    def test_from_patterns(self):
        pattern_set = PatternSet.from_patterns([[1, 0], [0, 1]])
        assert pattern_set.num_patterns == 2

    def test_from_patterns_empty(self):
        with pytest.raises(ValueError):
            PatternSet.from_patterns([])

    def test_equality(self, pattern_set):
        other = PatternSet(pattern_set.matrix.copy())
        assert pattern_set == other
