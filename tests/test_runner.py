"""Tests for the parallel sweep engine and its on-disk result cache."""

from __future__ import annotations

import json
import subprocess
import sys
import threading
import time

import pytest

from repro.experiments.common import TINY
from repro.runner import ResultCache, SweepEngine, SweepPoint, WorkloadSpec, cache_key
from repro.runner import engine as engine_module


def tiny_spec(model: str = "vgg16", dataset: str = "cifar10") -> WorkloadSpec:
    return WorkloadSpec(model=model, dataset=dataset, batch_size=2, num_steps=2)


def tiny_point(**overrides) -> SweepPoint:
    params = {
        "workload": tiny_spec(),
        "arch": TINY.arch_config(),
        "phi": TINY.phi_config(),
    }
    params.update(overrides)
    return SweepPoint(**params)


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("ab" * 32, {"x": 1.5})
        assert cache.get("ab" * 32) == {"x": 1.5}
        assert len(cache) == 1

    def test_miss_returns_none(self, tmp_path):
        assert ResultCache(tmp_path).get("cd" * 32) is None

    def test_corrupt_record_counts_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ef" * 32
        cache.put(key, {"x": 1})
        cache.path_for(key).write_text("{not json")
        assert cache.get(key) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(3):
            cache.put(f"{i:02d}" + "0" * 62, {"i": i})
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_cache_key_is_canonical(self):
        assert cache_key({"a": 1, "b": 2}) == cache_key({"b": 2, "a": 1})
        assert cache_key({"a": 1}) != cache_key({"a": 2})


class TestSweepPoint:
    def test_label_does_not_change_key(self):
        assert (
            tiny_point(label="x").cache_key() == tiny_point(label="y").cache_key()
        )

    def test_config_change_changes_key(self):
        base = tiny_point()
        other = tiny_point(phi=TINY.phi_config(num_patterns=8))
        assert base.cache_key() != other.cache_key()
        arch_other = tiny_point(arch=TINY.arch_config(tile_m=128))
        assert base.cache_key() != arch_other.cache_key()

    def test_workload_seed_changes_key(self):
        seeded = tiny_point(
            workload=WorkloadSpec("vgg16", "cifar10", batch_size=2, num_steps=2, seed=7)
        )
        assert tiny_point().cache_key() != seeded.cache_key()

    def test_payload_carries_schema_version(self):
        payload = tiny_point().cache_payload()
        assert payload["schema"] == engine_module.CACHE_SCHEMA_VERSION

    def test_unknown_accelerator_rejected(self):
        with pytest.raises(ValueError, match="unknown accelerator"):
            tiny_point(accelerator="tpu")

    def test_phi_accelerator_requires_config(self):
        with pytest.raises(ValueError, match="needs a PhiConfig"):
            SweepPoint(workload=tiny_spec(), arch=TINY.arch_config(), phi=None)


class TestSweepEngineCaching:
    @pytest.fixture()
    def counted_simulate(self, monkeypatch):
        """Stub ``simulate_point`` with an invocation counter."""
        calls: list[SweepPoint] = []

        def fake_simulate(point: SweepPoint) -> dict:
            calls.append(point)
            return {"total_cycles": 123.0, "key": point.cache_key()}

        monkeypatch.setattr(engine_module, "simulate_point", fake_simulate)
        return calls

    def test_second_run_hits_cache_with_zero_invocations(
        self, tmp_path, counted_simulate
    ):
        point = tiny_point()
        engine = SweepEngine(cache=ResultCache(tmp_path), jobs=1)
        first = engine.run_one(point)
        assert len(counted_simulate) == 1

        rerun_engine = SweepEngine(cache=ResultCache(tmp_path), jobs=1)
        second = rerun_engine.run_one(point)
        assert len(counted_simulate) == 1, "cached point must not re-simulate"
        assert second == first
        assert rerun_engine.stats.cache_hits == 1
        assert rerun_engine.stats.executed == 0

    def test_config_change_invalidates_cache(self, tmp_path, counted_simulate):
        engine = SweepEngine(cache=ResultCache(tmp_path), jobs=1)
        engine.run_one(tiny_point())
        engine.run_one(tiny_point(phi=TINY.phi_config(num_patterns=8)))
        assert len(counted_simulate) == 2, "changed config hash must recompute"

    def test_no_cache_always_recomputes(self, counted_simulate):
        engine = SweepEngine(cache=None, jobs=1)
        point = tiny_point()
        engine.run_one(point)
        engine.run_one(point)
        assert len(counted_simulate) == 2

    def test_duplicate_points_in_one_batch_dedupe_via_cache(
        self, tmp_path, counted_simulate
    ):
        engine = SweepEngine(cache=ResultCache(tmp_path), jobs=1)
        records = engine.run([tiny_point(), tiny_point(label="same-key")])
        assert len(counted_simulate) == 2 - 1
        assert records[0] == records[1]

    def test_records_preserve_input_order(self, tmp_path, counted_simulate):
        points = [
            tiny_point(),
            tiny_point(phi=TINY.phi_config(num_patterns=8)),
            tiny_point(phi=TINY.phi_config(num_patterns=4)),
        ]
        engine = SweepEngine(cache=ResultCache(tmp_path), jobs=1)
        records = engine.run(points)
        assert [r["key"] for r in records] == [p.cache_key() for p in points]

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            SweepEngine(jobs=0)


class TestSweepEngineExecution:
    def test_real_point_and_cached_record_agree(self, tmp_path):
        """A real (tiny) simulation round-trips exactly through the cache."""
        point = tiny_point()
        engine = SweepEngine(cache=ResultCache(tmp_path), jobs=1)
        record = engine.run_one(point)
        assert record["accelerator"] == "phi"
        assert record["total_cycles"] > 0
        assert record["layers"], "phi records carry per-layer metrics"
        cached = ResultCache(tmp_path).get(point.cache_key())
        assert cached == json.loads(json.dumps(record)), "records are JSON-stable"

    def test_paft_spec_is_honoured_for_every_accelerator(self):
        """A PAFT workload spec changes the record for all accelerator kinds."""
        import dataclasses

        engine = SweepEngine(jobs=1)
        paft_spec = dataclasses.replace(tiny_spec(), paft_strength=0.9)
        for accelerator in ("phi", "eyeriss", engine_module.DECOMPOSITION):
            base = engine.run_one(tiny_point(accelerator=accelerator))
            paft = engine.run_one(
                tiny_point(workload=paft_spec, accelerator=accelerator)
            )
            assert base != paft, f"{accelerator} ignored paft_strength"

    def test_paft_baseline_without_phi_config_is_rejected(self):
        import dataclasses

        point = tiny_point(
            workload=dataclasses.replace(tiny_spec(), paft_strength=0.5),
            accelerator="eyeriss",
            phi=None,
        )
        with pytest.raises(ValueError, match="PAFT workloads need a PhiConfig"):
            engine_module.simulate_point(point)

    def test_parallel_results_match_serial(self, tmp_path):
        points = [
            tiny_point(),
            tiny_point(accelerator="eyeriss", phi=None),
            tiny_point(
                accelerator=engine_module.DECOMPOSITION,
                phi=TINY.phi_config(num_patterns=8),
            ),
        ]
        serial = SweepEngine(jobs=1).run(points)
        parallel = SweepEngine(jobs=2).run(points)
        assert json.loads(json.dumps(serial)) == json.loads(json.dumps(parallel))


class TestRecordSchemaV3:
    """Cache schema v3: canonical records, validation, v2 invalidation."""

    def test_every_accelerator_record_is_valid_and_uniform(self):
        phi = engine_module.simulate_point(tiny_point())
        baseline = engine_module.simulate_point(
            tiny_point(accelerator="eyeriss", phi=None)
        )
        for record in (phi, baseline):
            assert record["schema"] == engine_module.CACHE_SCHEMA_VERSION
            assert engine_module.validate_record(record) == []
            assert record["layers"], "v3 records carry per-layer entries"
        # The baseline record now exposes the same aggregate surface as Phi.
        baseline_only = set(phi) - set(baseline)
        assert baseline_only == {"operation_counts", "breakdown"}, (
            "only the Phi-specific decomposition aggregates may differ"
        )

    def test_decomposition_record_is_valid(self):
        record = engine_module.simulate_point(
            tiny_point(accelerator=engine_module.DECOMPOSITION)
        )
        assert record["schema"] == engine_module.CACHE_SCHEMA_VERSION
        assert engine_module.validate_record(record) == []

    def test_validate_record_flags_missing_keys(self):
        record = engine_module.simulate_point(tiny_point())
        del record["total_cycles"]
        del record["layers"][0]["operations"]
        problems = engine_module.validate_record(record)
        assert any("total_cycles" in p for p in problems)
        assert any("layers[0]" in p for p in problems)

    def test_validate_record_flags_incomplete_energy_split(self):
        record = engine_module.simulate_point(tiny_point())
        record["energy"] = {"core": 1.0, "buffer": 2.0, "total": 3.0}  # no dram
        problems = engine_module.validate_record(record)
        assert any("energy" in p for p in problems)

    def test_validate_record_reports_stale_schema(self):
        problems = engine_module.validate_record({"accelerator": "phi", "schema": 2})
        assert problems == ["schema is 2, expected 3"]

    def test_v2_entries_are_ignored_not_crashed_on(self, tmp_path, monkeypatch):
        """A cache dir with pre-v3 entries stays usable: old records are
        dead keys, never hits, and validate-cache counts them as legacy."""
        from repro.runner.cli import main

        cache = ResultCache(tmp_path)
        # A v2-era record under its old key: no "schema" field, baseline
        # records had no layers.
        cache.put(
            "ab" * 32,
            {"accelerator": "eyeriss", "total_cycles": 1.0, "throughput_gops": 2.0},
        )

        calls = []

        def fake_simulate(point):
            calls.append(point)
            # No "schema" / "accelerator" keys: the stub's record reads
            # as a non-sweep cache entry, so validate-cache audits only
            # the v2 record this test actually plants.
            return {"x": 1}

        monkeypatch.setattr(engine_module, "simulate_point", fake_simulate)
        engine = SweepEngine(cache=ResultCache(tmp_path), jobs=1)
        engine.run_one(tiny_point(accelerator="eyeriss", phi=None))
        assert len(calls) == 1, "stale v2 entry must not satisfy a v3 key"
        assert engine.stats.cache_hits == 0

        assert main(["validate-cache", "--cache-dir", str(tmp_path)]) == 0

    def test_validate_cache_cli_fails_on_invalid_v3_record(self, tmp_path, capsys):
        from repro.runner.cli import main

        cache = ResultCache(tmp_path)
        cache.put(
            "cd" * 32,
            {"schema": engine_module.CACHE_SCHEMA_VERSION, "accelerator": "phi"},
        )
        assert main(["validate-cache", "--cache-dir", str(tmp_path)]) == 1
        captured = capsys.readouterr()
        assert "INVALID" in captured.err

    def test_validate_cache_cli_passes_on_real_records(self, tmp_path, capsys):
        from repro.runner.cli import main

        engine = SweepEngine(cache=ResultCache(tmp_path), jobs=1)
        engine.run([tiny_point(), tiny_point(accelerator="sato", phi=None)])
        assert main(["validate-cache", "--cache-dir", str(tmp_path)]) == 0
        captured = capsys.readouterr()
        assert "2 valid v3 records" in captured.out


class TestEngineReentrancy:
    """run() shared by concurrent threads: exactly-once, thread-local hooks."""

    def test_concurrent_runs_simulate_each_point_exactly_once(
        self, tmp_path, monkeypatch
    ):
        calls: list[str] = []
        lock = threading.Lock()

        def slow_simulate(point):
            with lock:
                calls.append(point.cache_key())
            time.sleep(0.2)  # hold the point in flight so runs overlap
            return {"schema": 3, "key": point.cache_key()}

        monkeypatch.setattr(engine_module, "simulate_point", slow_simulate)
        engine = SweepEngine(cache=ResultCache(tmp_path), jobs=1)
        points = [
            tiny_point(),
            tiny_point(phi=TINY.phi_config(num_patterns=8)),
        ]
        runners = 4
        barrier = threading.Barrier(runners)
        results: list[list | None] = [None] * runners

        def run(i: int) -> None:
            barrier.wait()
            results[i] = engine.run(points)

        threads = [threading.Thread(target=run, args=(i,)) for i in range(runners)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert len(calls) == len(points), "a point was simulated more than once"
        assert all(result == results[0] for result in results)
        stats = engine.stats
        assert stats.requested == runners * len(points)
        assert stats.executed == len(points)
        assert stats.cache_hits + stats.inflight_hits == (runners - 1) * len(points)
        assert engine._inflight == {}, "in-flight table must drain"

    def test_failed_owner_does_not_strand_waiters(self, tmp_path, monkeypatch):
        attempts: list[str] = []
        lock = threading.Lock()
        fail_first = threading.Event()

        def flaky_simulate(point):
            with lock:
                attempts.append(point.cache_key())
            time.sleep(0.1)
            if not fail_first.is_set():
                fail_first.set()
                raise RuntimeError("synthetic worker death")
            return {"schema": 3, "key": point.cache_key()}

        monkeypatch.setattr(engine_module, "simulate_point", flaky_simulate)
        engine = SweepEngine(cache=ResultCache(tmp_path), jobs=1)
        point = tiny_point()
        barrier = threading.Barrier(2)
        outcomes: list[object] = [None, None]

        def run(i: int) -> None:
            barrier.wait()
            try:
                outcomes[i] = engine.run([point])[0]
            except RuntimeError as error:
                outcomes[i] = error

        threads = [threading.Thread(target=run, args=(i,)) for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
            assert not thread.is_alive(), "waiter deadlocked on a dead owner"

        errors = [o for o in outcomes if isinstance(o, RuntimeError)]
        records = [o for o in outcomes if isinstance(o, dict)]
        assert len(errors) == 1 and len(records) == 1, outcomes
        assert records[0]["key"] == point.cache_key()
        assert engine._inflight == {}

    def test_dead_owner_without_cache_makes_waiters_recompute(
        self, monkeypatch
    ):
        """Cacheless dead-owner fallback: every waiter recomputes.

        With a cache, the first waiter to recover re-caches the record
        for the others.  Without one, the degraded-but-correct contract
        is that each waiter falls back to its own (deterministic)
        simulation — counted as ``executed``, never ``inflight_hits``,
        and the in-flight table still drains.
        """
        calls: list[str] = []
        lock = threading.Lock()
        fail_first = threading.Event()

        def flaky_simulate(point):
            with lock:
                calls.append(point.cache_key())
            first = not fail_first.is_set()
            fail_first.set()
            if first:
                time.sleep(0.3)  # hold the claim until the waiters join
                raise RuntimeError("synthetic owner death")
            return {"schema": 3, "key": point.cache_key()}

        monkeypatch.setattr(engine_module, "simulate_point", flaky_simulate)
        engine = SweepEngine(jobs=1)  # no result cache
        point = tiny_point()
        runners = 3
        barrier = threading.Barrier(runners)
        outcomes: list[object] = [None] * runners

        def run(i: int) -> None:
            barrier.wait()
            try:
                outcomes[i] = engine.run([point])[0]
            except RuntimeError as error:
                outcomes[i] = error

        threads = [threading.Thread(target=run, args=(i,)) for i in range(runners)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
            assert not thread.is_alive(), "waiter wedged on a dead owner"

        errors = [o for o in outcomes if isinstance(o, RuntimeError)]
        records = [o for o in outcomes if isinstance(o, dict)]
        assert len(errors) == 1 and len(records) == 2, outcomes
        assert all(r["key"] == point.cache_key() for r in records)
        assert len(calls) == 3, "each waiter must recompute once"
        assert engine.stats.executed == 2
        assert engine.stats.inflight_hits == 0
        assert engine.stats.cache_hits == 0
        assert engine._inflight == {}, "in-flight table must drain"

    def test_inflight_wait_counts_hit_even_without_cache(self, monkeypatch):
        calls: list[str] = []
        lock = threading.Lock()

        def slow_simulate(point):
            with lock:
                calls.append(point.cache_key())
            time.sleep(0.2)
            return {"schema": 3, "key": point.cache_key()}

        monkeypatch.setattr(engine_module, "simulate_point", slow_simulate)
        engine = SweepEngine(jobs=1)  # no result cache
        point = tiny_point()
        barrier = threading.Barrier(2)
        results: list[object] = [None, None]

        def run(i: int) -> None:
            barrier.wait()
            results[i] = engine.run([point])[0]

        threads = [threading.Thread(target=run, args=(i,)) for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)

        assert len(calls) == 1, "the waiter must reuse the owner's record"
        assert results[0] == results[1]
        assert engine.stats.executed == 1
        assert engine.stats.inflight_hits == 1
        assert engine._inflight == {}

    def test_progress_scope_hooks_are_thread_local(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            engine_module,
            "simulate_point",
            lambda point: {"schema": 3, "key": point.cache_key()},
        )
        engine = SweepEngine(cache=ResultCache(tmp_path), jobs=1)
        grids = {
            "a": [tiny_point()],
            "b": [
                tiny_point(phi=TINY.phi_config(num_patterns=8)),
                tiny_point(phi=TINY.phi_config(num_patterns=4)),
            ],
        }
        seen: dict[str, list] = {"a": [], "b": []}
        barrier = threading.Barrier(2)

        def run(name: str) -> None:
            hook = lambda done, total, point, origin: seen[name].append(
                (done, total, origin)
            )
            barrier.wait()
            with engine_module.progress_scope(hook):
                engine.run(grids[name])

        threads = [
            threading.Thread(target=run, args=(name,)) for name in ("a", "b")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert [event[:2] for event in seen["a"]] == [(1, 1)]
        assert [event[:2] for event in sorted(seen["b"])] == [(1, 2), (2, 2)]
        assert getattr(engine_module._PROGRESS, "hook", None) is None


class TestValidateCacheSubprocess:
    """The CLI contract: non-zero exit whenever any record fails validation.

    Regression for two silent-pass holes: a v3 record that lost its
    ``accelerator`` key used to be skipped as a report-section payload,
    and corrupt JSON files were not reported at all.  Asserted through a
    real ``python -m repro.runner`` subprocess, exit code included.
    """

    def _validate(self, cache_dir):
        return subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.runner",
                "validate-cache",
                "--cache-dir",
                str(cache_dir),
            ],
            capture_output=True,
            text=True,
        )

    def test_record_missing_required_keys_exits_nonzero(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(
            "ab" * 32,
            {"schema": engine_module.CACHE_SCHEMA_VERSION, "accelerator": "phi"},
        )
        completed = self._validate(tmp_path)
        assert completed.returncode == 1
        assert "INVALID" in completed.stderr

    def test_record_missing_accelerator_key_exits_nonzero(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(
            "cd" * 32,
            {"schema": engine_module.CACHE_SCHEMA_VERSION, "model": "vgg16"},
        )
        completed = self._validate(tmp_path)
        assert completed.returncode == 1
        assert "missing key 'accelerator'" in completed.stderr

    def test_corrupt_record_file_exits_nonzero(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("ef" * 32, {"schema": engine_module.CACHE_SCHEMA_VERSION})
        cache.path_for("ef" * 32).write_text('{"schema": 3, "torn":')
        completed = self._validate(tmp_path)
        assert completed.returncode == 1
        assert "unreadable or corrupt JSON" in completed.stderr

    def test_valid_real_records_exit_zero(self, tmp_path):
        engine = SweepEngine(cache=ResultCache(tmp_path), jobs=1)
        engine.run_one(tiny_point())
        completed = self._validate(tmp_path)
        assert completed.returncode == 0, completed.stderr
        assert "1 valid v3 records" in completed.stdout
