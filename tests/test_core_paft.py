"""Unit tests for pattern-aware fine-tuning (PAFT)."""

import numpy as np
import pytest

from repro.core.calibration import PhiCalibrator
from repro.core.metrics import sparsity_breakdown
from repro.core.paft import (
    ActivationAligner,
    PAFTConfig,
    layer_regularizer,
    paft_regularizer,
    paft_regularizer_gradient,
)


@pytest.fixture
def calibration(binary_matrix, small_phi_config):
    return PhiCalibrator(small_phi_config).calibrate_layer("layer0", binary_matrix)


class TestPAFTConfig:
    def test_defaults(self):
        config = PAFTConfig()
        assert config.epochs == 5

    def test_invalid(self):
        with pytest.raises(ValueError):
            PAFTConfig(lam=-1.0)
        with pytest.raises(ValueError):
            PAFTConfig(learning_rate=0.0)
        with pytest.raises(ValueError):
            PAFTConfig(epochs=0)


class TestRegularizer:
    def test_regularizer_counts_level2_nonzeros(self, binary_matrix, calibration):
        decomposition = calibration.decompose(binary_matrix)
        nnz = sum(int(np.count_nonzero(t.level2)) for t in decomposition.tiles)
        value = layer_regularizer(binary_matrix, calibration, output_width=7)
        assert value == pytest.approx(7 * nnz)

    def test_regularizer_zero_for_exact_patterns(self, calibration):
        # Rows that exactly equal calibrated patterns need no corrections.
        pattern_rows = np.hstack(
            [ps.matrix[:1] for ps in calibration.pattern_sets]
        )
        value = layer_regularizer(pattern_rows, calibration, output_width=3)
        assert value == 0.0

    def test_invalid_output_width(self, binary_matrix, calibration):
        with pytest.raises(ValueError):
            layer_regularizer(binary_matrix, calibration, output_width=0)

    def test_model_level_regularizer(self, binary_matrix, calibration, small_phi_config):
        from repro.core.calibration import ModelCalibration

        model = ModelCalibration(config=small_phi_config)
        model.add(calibration)
        total = paft_regularizer(
            {"layer0": binary_matrix, "unknown": binary_matrix},
            model,
            {"layer0": 4, "unknown": 4},
        )
        assert total == layer_regularizer(binary_matrix, calibration, 4)


class TestRegularizerGradient:
    def test_gradient_shape_and_sign(self, binary_matrix, calibration):
        grad = paft_regularizer_gradient(binary_matrix, calibration, output_width=3)
        assert grad.shape == binary_matrix.shape
        decomposition = calibration.decompose(binary_matrix)
        # Gradient is zero where Level 2 is zero (only mismatches feel pressure).
        level2_full = np.hstack([t.level2 for t in decomposition.tiles])
        assert np.all((grad != 0) <= (level2_full != 0))

    def test_gradient_scales_with_output_width(self, binary_matrix, calibration):
        g1 = paft_regularizer_gradient(binary_matrix, calibration, output_width=1)
        g5 = paft_regularizer_gradient(binary_matrix, calibration, output_width=5)
        assert np.allclose(g5, 5.0 * g1)


class TestActivationAligner:
    def test_invalid_strength(self):
        with pytest.raises(ValueError):
            ActivationAligner(alignment_strength=1.5)

    def test_zero_strength_is_identity(self, binary_matrix, calibration):
        aligner = ActivationAligner(alignment_strength=0.0)
        aligned = aligner.align_layer(binary_matrix, calibration)
        assert np.array_equal(aligned, binary_matrix)

    def test_full_strength_removes_all_mismatches(self, binary_matrix, calibration):
        aligner = ActivationAligner(alignment_strength=1.0)
        aligned = aligner.align_layer(binary_matrix, calibration)
        decomposition = calibration.decompose(aligned)
        # Rows that had a pattern now match it exactly; the remaining L2
        # nonzeros can only come from rows without an assigned pattern.
        original = calibration.decompose(binary_matrix)
        assert decomposition.level2_density <= original.level2_density

    def test_alignment_reduces_level2_density(self, binary_matrix, calibration):
        aligner = ActivationAligner(alignment_strength=0.6, seed=3)
        aligned = aligner.align_layer(binary_matrix, calibration)
        before = sparsity_breakdown(calibration.decompose(binary_matrix)).level2_density
        after = sparsity_breakdown(calibration.decompose(aligned)).level2_density
        assert after <= before

    def test_output_stays_binary(self, binary_matrix, calibration):
        aligner = ActivationAligner(alignment_strength=0.7, seed=1)
        aligned = aligner.align_layer(binary_matrix, calibration)
        assert set(np.unique(aligned)) <= {0, 1}

    def test_align_model(self, binary_matrix, calibration, small_phi_config):
        from repro.core.calibration import ModelCalibration

        model = ModelCalibration(config=small_phi_config)
        model.add(calibration)
        aligner = ActivationAligner(alignment_strength=0.5)
        result = aligner.align_model(
            {"layer0": binary_matrix, "other": binary_matrix}, model
        )
        assert set(result) == {"layer0", "other"}
        # Unknown layers are returned unchanged.
        assert np.array_equal(result["other"], binary_matrix)

    def test_expected_accuracy_drop_is_small(self):
        assert ActivationAligner(alignment_strength=1.0).expected_accuracy_drop() < 0.01
