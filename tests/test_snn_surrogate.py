"""Unit tests for surrogate gradient functions."""

import numpy as np
import pytest

from repro.snn.surrogate import (
    ArctanSurrogate,
    RectangularSurrogate,
    SigmoidSurrogate,
    TriangularSurrogate,
    get_surrogate,
    heaviside,
)


def test_heaviside():
    assert np.array_equal(heaviside(np.array([-1.0, 0.0, 2.0])), [0.0, 1.0, 1.0])


@pytest.mark.parametrize(
    "surrogate",
    [RectangularSurrogate(), SigmoidSurrogate(), ArctanSurrogate(), TriangularSurrogate()],
)
class TestSurrogateProperties:
    def test_non_negative(self, surrogate):
        x = np.linspace(-5, 5, 101)
        assert np.all(surrogate(x) >= 0)

    def test_peaks_at_zero(self, surrogate):
        x = np.linspace(-5, 5, 101)
        values = surrogate(x)
        assert values[50] == pytest.approx(values.max())

    def test_symmetric(self, surrogate):
        x = np.linspace(-3, 3, 61)
        values = surrogate(x)
        assert np.allclose(values, values[::-1], atol=1e-9)

    def test_decays_away_from_threshold(self, surrogate):
        assert surrogate(np.array([5.0]))[0] <= surrogate(np.array([0.0]))[0]


def test_sigmoid_matches_analytic_derivative():
    surrogate = SigmoidSurrogate(alpha=4.0)
    x = np.linspace(-2, 2, 41)
    eps = 1e-6
    sigmoid = lambda v: 1.0 / (1.0 + np.exp(-4.0 * v))
    numeric = (sigmoid(x + eps) - sigmoid(x - eps)) / (2 * eps)
    assert np.allclose(surrogate(x), numeric, atol=1e-5)


def test_rectangular_width():
    surrogate = RectangularSurrogate(width=2.0)
    assert surrogate(np.array([0.9]))[0] == pytest.approx(0.5)
    assert surrogate(np.array([1.1]))[0] == 0.0


def test_registry_lookup():
    assert isinstance(get_surrogate("sigmoid"), SigmoidSurrogate)
    assert isinstance(get_surrogate("arctan", alpha=3.0), ArctanSurrogate)


def test_registry_unknown():
    with pytest.raises(ValueError):
        get_surrogate("unknown")
