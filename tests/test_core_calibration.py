"""Unit tests for the Phi calibration stage."""

import numpy as np
import pytest

from repro.core.calibration import LayerCalibration, ModelCalibration, PhiCalibrator
from repro.core.config import PhiConfig


class TestPhiCalibrator:
    def test_calibrate_layer_shapes(self, binary_matrix, small_phi_config):
        calibrator = PhiCalibrator(small_phi_config)
        calibration = calibrator.calibrate_layer("layer0", binary_matrix)
        assert calibration.layer_name == "layer0"
        assert calibration.total_width == binary_matrix.shape[1]
        assert calibration.num_partitions == 4  # 32 / 8
        for pattern_set in calibration.pattern_sets:
            assert pattern_set.width == 8
            assert pattern_set.num_patterns <= small_phi_config.num_patterns

    def test_decompose_roundtrip(self, binary_matrix, small_phi_config):
        calibrator = PhiCalibrator(small_phi_config)
        calibration = calibrator.calibrate_layer("layer0", binary_matrix)
        decomposition = calibration.decompose(binary_matrix)
        assert np.array_equal(decomposition.reconstruct(), binary_matrix.astype(np.int8))

    def test_subsampling_respects_limit(self, rng):
        config = PhiConfig(partition_size=8, num_patterns=8, calibration_samples=50)
        calibrator = PhiCalibrator(config)
        rows = (rng.random((500, 16)) < 0.3).astype(np.uint8)
        calibration = calibrator.calibrate_layer("big", rows)
        assert calibration.total_width == 16

    def test_rejects_non_binary(self, small_phi_config):
        calibrator = PhiCalibrator(small_phi_config)
        with pytest.raises(ValueError):
            calibrator.calibrate_layer("bad", np.array([[0.5, 1.0]]))

    def test_rejects_empty(self, small_phi_config):
        calibrator = PhiCalibrator(small_phi_config)
        with pytest.raises(ValueError):
            calibrator.calibrate_layer("bad", np.zeros((0, 8), dtype=np.uint8))

    def test_rejects_1d(self, small_phi_config):
        calibrator = PhiCalibrator(small_phi_config)
        with pytest.raises(ValueError):
            calibrator.calibrate_layer("bad", np.zeros(8, dtype=np.uint8))

    def test_calibrate_model(self, binary_matrix, small_phi_config):
        calibrator = PhiCalibrator(small_phi_config)
        model = calibrator.calibrate_model({"a": binary_matrix, "b": binary_matrix[:, :16]})
        assert "a" in model and "b" in model
        assert model.layer_names() == ["a", "b"]
        assert model["b"].total_width == 16

    def test_calibrate_model_from_pairs(self, binary_matrix, small_phi_config):
        calibrator = PhiCalibrator(small_phi_config)
        model = calibrator.calibrate_model([("x", binary_matrix)])
        assert "x" in model

    def test_default_config(self, binary_matrix):
        calibrator = PhiCalibrator()
        assert calibrator.config.partition_size == 16


class TestLayerCalibration:
    def test_compute_pwps(self, binary_matrix, small_phi_config, rng):
        calibrator = PhiCalibrator(small_phi_config)
        calibration = calibrator.calibrate_layer("layer0", binary_matrix)
        weights = rng.standard_normal((32, 10))
        pwps = calibration.compute_pwps(weights)
        assert len(pwps) == calibration.num_partitions
        for pattern_set, pwp in zip(calibration.pattern_sets, pwps):
            assert pwp.shape == (pattern_set.num_patterns + 1, 10)

    def test_compute_pwps_shape_mismatch(self, binary_matrix, small_phi_config):
        calibrator = PhiCalibrator(small_phi_config)
        calibration = calibrator.calibrate_layer("layer0", binary_matrix)
        with pytest.raises(ValueError):
            calibration.compute_pwps(np.zeros((5, 3)))

    def test_pattern_memory_bits(self, binary_matrix, small_phi_config):
        calibrator = PhiCalibrator(small_phi_config)
        calibration = calibrator.calibrate_layer("layer0", binary_matrix)
        assert calibration.pattern_memory_bits() > 0

    def test_decompose_on_unseen_rows_is_exact(self, binary_matrix, small_phi_config, rng):
        # Patterns calibrated on one half must still yield an exact
        # (lossless) decomposition on the other half.
        calibrator = PhiCalibrator(small_phi_config)
        half = binary_matrix.shape[0] // 2
        calibration = calibrator.calibrate_layer("layer0", binary_matrix[:half])
        unseen = binary_matrix[half:]
        decomposition = calibration.decompose(unseen)
        assert np.array_equal(decomposition.reconstruct(), unseen.astype(np.int8))


class TestModelCalibration:
    def test_missing_layer_raises(self, small_phi_config):
        model = ModelCalibration(config=small_phi_config)
        with pytest.raises(KeyError):
            model["missing"]

    def test_contains(self, binary_matrix, small_phi_config):
        calibrator = PhiCalibrator(small_phi_config)
        calibration = calibrator.calibrate_layer("layer0", binary_matrix)
        model = ModelCalibration(config=small_phi_config)
        model.add(calibration)
        assert "layer0" in model
        assert "other" not in model
        assert isinstance(model["layer0"], LayerCalibration)
