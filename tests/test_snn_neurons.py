"""Unit tests for the spiking neuron models."""

import numpy as np
import pytest

from repro.snn.neurons import FewSpikesNeuron, IFNeuron, LIFNeuron


class TestLIFNeuron:
    def test_spikes_are_binary(self):
        neuron = LIFNeuron()
        spikes = neuron.run(np.random.default_rng(0).standard_normal((5, 10)))
        assert set(np.unique(spikes)) <= {0.0, 1.0}

    def test_fires_above_threshold(self):
        neuron = LIFNeuron(threshold=1.0)
        spikes = neuron.step(np.array([2.0, 0.1]))
        assert spikes[0] == 1.0
        assert spikes[1] == 0.0

    def test_hard_reset_clears_membrane(self):
        neuron = LIFNeuron(threshold=1.0, reset_mode="hard")
        neuron.step(np.array([2.0]))
        assert neuron.membrane[0] == 0.0

    def test_soft_reset_subtracts_threshold(self):
        neuron = LIFNeuron(threshold=1.0, reset_mode="soft")
        neuron.step(np.array([2.5]))
        assert neuron.membrane[0] == pytest.approx(1.5)

    def test_leak_decays_membrane(self):
        neuron = LIFNeuron(threshold=10.0, tau=2.0)
        neuron.step(np.array([1.0]))
        neuron.step(np.array([0.0]))
        assert neuron.membrane[0] == pytest.approx(0.5)

    def test_subthreshold_integration_fires_eventually(self):
        neuron = LIFNeuron(threshold=1.0, tau=1e9)
        outputs = [neuron.step(np.array([0.4]))[0] for _ in range(4)]
        assert sum(outputs) >= 1.0

    def test_reset_state(self):
        neuron = LIFNeuron()
        neuron.step(np.array([0.5]))
        neuron.reset_state()
        assert neuron.membrane is None

    def test_surrogate_grad_requires_step(self):
        neuron = LIFNeuron()
        with pytest.raises(RuntimeError):
            neuron.surrogate_grad()

    def test_surrogate_grad_positive(self):
        neuron = LIFNeuron()
        neuron.step(np.array([0.9, -3.0]))
        grad = neuron.surrogate_grad()
        assert grad.shape == (2,)
        assert np.all(grad >= 0)
        assert grad[0] > grad[1]  # closer to threshold -> larger surrogate

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LIFNeuron(threshold=0.0)
        with pytest.raises(ValueError):
            LIFNeuron(tau=0.5)
        with pytest.raises(ValueError):
            LIFNeuron(reset_mode="bounce")

    def test_run_shape(self):
        neuron = LIFNeuron()
        currents = np.ones((3, 4, 5))
        spikes = neuron.run(currents)
        assert spikes.shape == currents.shape


class TestIFNeuron:
    def test_no_leak(self):
        neuron = IFNeuron(threshold=10.0)
        assert neuron.leak == 1.0
        neuron.step(np.array([1.0]))
        neuron.step(np.array([0.0]))
        assert neuron.membrane[0] == pytest.approx(1.0)

    def test_integrates_to_spike(self):
        neuron = IFNeuron(threshold=1.0)
        outputs = [neuron.step(np.array([0.5]))[0] for _ in range(3)]
        assert outputs[1] == 1.0  # 0.5 + 0.5 crosses threshold at step 2


class TestFewSpikesNeuron:
    def test_encode_is_binary(self):
        neuron = FewSpikesNeuron(num_steps=4)
        spikes = neuron.encode(np.array([0.3, 0.9, 0.0]))
        assert spikes.shape == (4, 3)
        assert set(np.unique(spikes)) <= {0.0, 1.0}

    def test_decode_approximates_value(self):
        neuron = FewSpikesNeuron(num_steps=8)
        values = np.array([0.1, 0.45, 0.8])
        decoded = neuron.decode(neuron.encode(values))
        assert np.allclose(decoded, values, atol=0.05)

    def test_sparse_coding(self):
        # FS coding uses at most num_steps spikes per value, usually fewer.
        neuron = FewSpikesNeuron(num_steps=4)
        spikes = neuron.encode(np.array([0.5]))
        assert spikes.sum() <= 4

    def test_decode_shape_mismatch(self):
        neuron = FewSpikesNeuron(num_steps=4)
        with pytest.raises(ValueError):
            neuron.decode(np.zeros((3, 2)))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            FewSpikesNeuron(num_steps=0)
        with pytest.raises(ValueError):
            FewSpikesNeuron(threshold=0.0)
