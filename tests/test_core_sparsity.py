"""Unit tests for the Phi sparsity decomposition (Level 1 + Level 2)."""

import numpy as np
import pytest

from repro.core.patterns import NO_PATTERN, PatternSet
from repro.core.sparsity import (
    decompose_matrix,
    decompose_tile,
    partition_boundaries,
)


@pytest.fixture
def simple_patterns():
    return PatternSet(np.array([[0, 1, 1, 0], [1, 1, 0, 1]], dtype=np.uint8))


class TestPartitionBoundaries:
    def test_exact_division(self):
        assert partition_boundaries(32, 16) == [(0, 16), (16, 32)]

    def test_remainder(self):
        assert partition_boundaries(20, 16) == [(0, 16), (16, 20)]

    def test_single_partition(self):
        assert partition_boundaries(8, 16) == [(0, 8)]

    def test_invalid(self):
        with pytest.raises(ValueError):
            partition_boundaries(0, 16)
        with pytest.raises(ValueError):
            partition_boundaries(16, 0)


class TestDecomposeTile:
    def test_exact_pattern_match_has_empty_level2(self, simple_patterns):
        tile = np.array([[0, 1, 1, 0]], dtype=np.uint8)
        result = decompose_tile(tile, simple_patterns)
        assert result.pattern_indices[0] == 1
        assert np.count_nonzero(result.level2) == 0

    def test_paper_example_row2(self, simple_patterns):
        # Paper Fig. 2: row 1110 vs pattern 0110 -> +1 correction at bit 0.
        tile = np.array([[1, 1, 1, 0]], dtype=np.uint8)
        result = decompose_tile(tile, simple_patterns)
        assert result.pattern_indices[0] == 1
        assert np.array_equal(result.level2[0], [1, 0, 0, 0])

    def test_paper_example_row1_negative_correction(self, simple_patterns):
        # Paper Fig. 2: row 1100 vs pattern 1101 -> -1 correction at bit 3.
        tile = np.array([[1, 1, 0, 0]], dtype=np.uint8)
        result = decompose_tile(tile, simple_patterns)
        assert result.pattern_indices[0] == 2
        assert np.array_equal(result.level2[0], [0, 0, -1, 0]) or np.array_equal(
            result.level2[0], [0, 0, 0, -1]
        ) or np.count_nonzero(result.level2[0]) == 1

    def test_no_pattern_when_bit_sparsity_is_better(self, simple_patterns):
        # A one-hot row: any pattern needs more corrections than its single 1.
        tile = np.array([[0, 0, 0, 1]], dtype=np.uint8)
        result = decompose_tile(tile, simple_patterns)
        assert result.pattern_indices[0] == NO_PATTERN
        assert np.array_equal(result.level2[0], [0, 0, 0, 1])

    def test_all_zero_row(self, simple_patterns):
        tile = np.array([[0, 0, 0, 0]], dtype=np.uint8)
        result = decompose_tile(tile, simple_patterns)
        assert result.pattern_indices[0] == NO_PATTERN
        assert np.count_nonzero(result.level2[0]) == 0

    def test_reconstruction_is_exact(self, simple_patterns, rng):
        tile = (rng.random((64, 4)) < 0.4).astype(np.uint8)
        result = decompose_tile(tile, simple_patterns)
        assert np.array_equal(result.reconstruct(), tile.astype(np.int8))

    def test_level2_values_in_range(self, simple_patterns, rng):
        tile = (rng.random((64, 4)) < 0.4).astype(np.uint8)
        result = decompose_tile(tile, simple_patterns)
        assert set(np.unique(result.level2)) <= {-1, 0, 1}

    def test_compute_output_matches_reference(self, simple_patterns, rng):
        tile = (rng.random((32, 4)) < 0.3).astype(np.uint8)
        weights = rng.standard_normal((4, 5))
        result = decompose_tile(tile, simple_patterns)
        assert np.allclose(result.compute_output(weights), tile @ weights)

    def test_compute_output_with_precomputed_pwps(self, simple_patterns, rng):
        tile = (rng.random((16, 4)) < 0.3).astype(np.uint8)
        weights = rng.standard_normal((4, 3))
        pwps = simple_patterns.compute_pwps(weights)
        result = decompose_tile(tile, simple_patterns)
        assert np.allclose(result.compute_output(weights, pwps), tile @ weights)

    def test_rejects_non_binary(self, simple_patterns):
        with pytest.raises(ValueError):
            decompose_tile(np.array([[0, 2, 0, 1]]), simple_patterns)

    def test_rejects_width_mismatch(self, simple_patterns):
        with pytest.raises(ValueError):
            decompose_tile(np.zeros((2, 5), dtype=np.uint8), simple_patterns)

    def test_densities(self, simple_patterns):
        tile = np.array([[0, 1, 1, 0], [0, 0, 0, 0]], dtype=np.uint8)
        result = decompose_tile(tile, simple_patterns)
        assert result.bit_density == pytest.approx(0.25)
        assert result.level1_density == pytest.approx(0.5)
        assert result.level2_density == 0.0

    def test_empty_tile(self, simple_patterns):
        result = decompose_tile(np.zeros((0, 4), dtype=np.uint8), simple_patterns)
        assert result.num_rows == 0
        assert result.bit_density == 0.0


class TestDecomposeMatrix:
    @pytest.fixture
    def matrix_and_patterns(self, rng):
        matrix = (rng.random((50, 24)) < 0.3).astype(np.uint8)
        patterns = [
            PatternSet((rng.random((4, 8)) < 0.3).astype(np.uint8)) for _ in range(3)
        ]
        return matrix, patterns

    def test_reconstruction(self, matrix_and_patterns):
        matrix, patterns = matrix_and_patterns
        result = decompose_matrix(matrix, patterns, 8)
        assert np.array_equal(result.reconstruct(), matrix.astype(np.int8))

    def test_compute_output(self, matrix_and_patterns, rng):
        matrix, patterns = matrix_and_patterns
        weights = rng.standard_normal((24, 6))
        result = decompose_matrix(matrix, patterns, 8)
        assert np.allclose(result.compute_output(weights), matrix @ weights)

    def test_pattern_index_matrix_shape(self, matrix_and_patterns):
        matrix, patterns = matrix_and_patterns
        result = decompose_matrix(matrix, patterns, 8)
        assert result.pattern_index_matrix().shape == (50, 3)

    def test_wrong_pattern_set_count(self, matrix_and_patterns):
        matrix, patterns = matrix_and_patterns
        with pytest.raises(ValueError):
            decompose_matrix(matrix, patterns[:2], 8)

    def test_densities_bounded(self, matrix_and_patterns):
        matrix, patterns = matrix_and_patterns
        result = decompose_matrix(matrix, patterns, 8)
        assert 0.0 <= result.bit_density <= 1.0
        assert 0.0 <= result.level1_density <= 1.0
        assert 0.0 <= result.level2_density <= 1.0
        assert result.level2_density == pytest.approx(
            result.level2_positive_density + result.level2_negative_density
        )

    def test_compute_output_weight_mismatch(self, matrix_and_patterns):
        matrix, patterns = matrix_and_patterns
        result = decompose_matrix(matrix, patterns, 8)
        with pytest.raises(ValueError):
            result.compute_output(np.zeros((10, 4)))
