"""Concurrency and protocol tests for the sweep service.

The suite locks down the guarantees DESIGN.md's service section makes:

* N clients hammering one served engine with overlapping fig7-TINY jobs
  get byte-identical v3 records versus a plain serial run, while every
  ``(spec, config)`` unit is simulated exactly once (asserted by
  counting real ``simulate_point`` invocations).
* No client ever observes a torn JSON response, even while progress
  counts stream mid-job.
* Request round-tripping is lossless (property-tested) and unknown
  fields / experiments / scales fail with a 4xx — never a dispatcher
  crash.
* The service refuses to serve cached records that fail
  ``validate_record``, and draining refuses new jobs while finishing
  accepted ones.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from contextlib import contextmanager

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.runner.engine as engine_module
from repro.experiments.common import TINY
from repro.experiments.fig7 import run_fig7
from repro.experiments.registry import (
    REGISTRY,
    SCALES,
    ExperimentSpec,
    experiment_names,
)
from repro.experiments.registry import _jsonify as jsonify
from repro.runner import ArtifactStore, ResultCache, SweepEngine
from repro.service import (
    DONE,
    JobRequest,
    JobService,
    RequestError,
    RetryPolicy,
    ServiceClient,
    ServiceError,
    ServiceUnavailable,
    serve,
)

#: Tests talk to an in-process server: deterministic errors (404/502)
#: should fail fast, not back off for seconds like the production policy.
FAST_RETRY = RetryPolicy(attempts=2, base_delay=0.01, max_delay=0.02, jitter=0.0)


@contextmanager
def served(tmp_path, *, workers=2, cache=True, name="svc"):
    """A live in-process service over fresh cache/store directories."""
    engine = SweepEngine(
        cache=ResultCache(tmp_path / f"{name}-cache") if cache else None,
        store=ArtifactStore(tmp_path / f"{name}-store"),
    )
    service = JobService(engine, workers=workers)
    server = serve(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield ServiceClient(server.url, retry=FAST_RETRY), service, server
    finally:
        service.drain()
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


def canonical(records: dict[str, dict]) -> dict[str, bytes]:
    """Records as canonical JSON bytes, for byte-identity comparisons."""
    return {
        key: json.dumps(record, sort_keys=True).encode()
        for key, record in records.items()
    }


class TestConcurrentClients:
    """The headline suite: overlapping fig7-TINY jobs on one engine."""

    def test_overlapping_fig7_jobs_run_each_unit_once_and_match_serial(
        self, tmp_path, monkeypatch
    ):
        calls: list[str] = []
        lock = threading.Lock()
        real_simulate = engine_module.simulate_point

        def counting_simulate(point):
            with lock:
                calls.append(point.cache_key())
            return real_simulate(point)

        monkeypatch.setattr(engine_module, "simulate_point", counting_simulate)

        clients = 4
        with served(tmp_path, workers=3) as (client, service, server):
            jobs: list[dict | None] = [None] * clients
            torn: list[str] = []
            stop_polling = threading.Event()

            def poll() -> None:
                # Hammer the server while the job runs; every body must
                # parse — a torn response would fail json.loads.
                while not stop_polling.is_set():
                    for path in ("/jobs", "/experiments", "/healthz"):
                        with urllib.request.urlopen(server.url + path) as response:
                            body = response.read()
                        try:
                            json.loads(body)
                        except ValueError:
                            torn.append(body.decode(errors="replace")[:200])

            def submit(i: int) -> None:
                jobs[i] = client.run("fig7", scale="tiny", timeout=600)

            pollers = [threading.Thread(target=poll) for _ in range(2)]
            submitters = [
                threading.Thread(target=submit, args=(i,)) for i in range(clients)
            ]
            for thread in pollers + submitters:
                thread.start()
            for thread in submitters:
                thread.join()
            stop_polling.set()
            for thread in pollers:
                thread.join()

            assert torn == [], "client observed a torn JSON response"
            assert all(job is not None and job["status"] == DONE for job in jobs)

            # Identical in-flight requests collapse onto one job...
            assert len({job["id"] for job in jobs}) == 1
            # ...which simulated every distinct point exactly once.
            assert len(calls) == len(set(calls))
            assert len(calls) > 0

            # Every client sees the same record set, and each raw record
            # is byte-identical to a from-scratch serial run's.
            record_sets = [canonical(client.records_for(job)) for job in jobs]
            assert all(records == record_sets[0] for records in record_sets)

            serial_cache = ResultCache(tmp_path / "serial-cache")
            with SweepEngine(
                cache=serial_cache, store=ArtifactStore(tmp_path / "serial-store")
            ) as serial_engine:
                run_fig7(TINY, engine=serial_engine)
            serial_records = canonical(serial_cache.snapshot())
            assert record_sets[0] == {
                key: serial_records[key] for key in record_sets[0]
            }
            # The served job covered the full fig7 grid, not a subset.
            assert set(record_sets[0]) == set(serial_records)

    def test_resubmitting_finished_job_serves_from_cache(self, tmp_path, monkeypatch):
        calls = []
        real_simulate = engine_module.simulate_point

        def counting_simulate(point):
            calls.append(point)
            return real_simulate(point)

        monkeypatch.setattr(engine_module, "simulate_point", counting_simulate)
        with served(tmp_path) as (client, service, server):
            first = client.run("fig12", scale="tiny", timeout=600)
            executed = len(calls)
            assert executed > 0
            second = client.run("fig12", scale="tiny", timeout=600)
            assert len(calls) == executed, "warm resubmit must not re-simulate"
            assert second["id"] != first["id"]
            assert second["progress"]["cache_hits"] == first["progress"]["points"]
            assert canonical(client.records_for(second)) == canonical(
                client.records_for(first)
            )


class TestRequestValidation:
    """4xx on anything malformed; dispatcher workers never crash."""

    def test_unknown_fields_experiments_and_scales_are_rejected(self, tmp_path):
        with served(tmp_path, cache=False) as (client, service, server):
            for payload, fragment in [
                ({"experiment": "fig12", "scale": "tiny", "bogus": 1}, "unknown request fields"),
                ({"experiment": "not-an-experiment"}, "unknown experiment"),
                ({"experiment": "fig12", "scale": "galactic"}, "unknown scale"),
                ({"scale": "tiny"}, "experiment"),
                ({"experiment": "fig12", "overrides": [1, 2]}, "overrides"),
                ({"experiment": "fig12", "overrides": {"1": 1, "x": {"y": [None]}}, "nope": 0}, "unknown request fields"),
            ]:
                with pytest.raises(ServiceError) as err:
                    client._request("POST", "/jobs", payload)
                assert err.value.status == 400
                assert fragment in str(err.value)

            # Raw garbage bodies are 400s too, not handler crashes.
            for raw in (b"", b"{not json", b"[1, 2, 3]", b'"fig12"'):
                request = urllib.request.Request(
                    server.url + "/jobs", data=raw, method="POST"
                )
                with pytest.raises(urllib.error.HTTPError) as http_err:
                    urllib.request.urlopen(request)
                assert http_err.value.code == 400
                json.loads(http_err.value.read())  # error body is valid JSON

            # After all that abuse the workers still serve real jobs.
            job = client.run("table3", scale="tiny", timeout=300)
            assert job["status"] == DONE

    def test_harness_failure_fails_the_job_not_the_worker(self, tmp_path):
        with served(tmp_path, cache=False) as (client, service, server):
            with pytest.raises(ServiceError) as err:
                client.run(
                    "table3", scale="tiny", overrides={"no_such_kwarg": 1}, timeout=300
                )
            assert "failed" in str(err.value)
            job = client.run("table3", scale="tiny", timeout=300)
            assert job["status"] == DONE

    def test_unknown_job_and_record_are_404(self, tmp_path):
        with served(tmp_path) as (client, service, server):
            for path in ("/jobs/job-999999", "/records/" + "ab" * 32, "/nope"):
                with pytest.raises(ServiceError) as err:
                    client._request("GET", path)
                assert err.value.status == 404

    def test_hostile_content_length_is_a_400_not_a_hang(self, tmp_path):
        import http.client

        with served(tmp_path, cache=False) as (client, service, server):
            for bad_length in ("-1", "abc", str(100 * 1024 * 1024)):
                connection = http.client.HTTPConnection(
                    "127.0.0.1", server.port, timeout=10
                )
                try:
                    connection.putrequest("POST", "/jobs")
                    connection.putheader("Content-Length", bad_length)
                    connection.endheaders()
                    response = connection.getresponse()
                    assert response.status == 400, bad_length
                    json.loads(response.read())
                finally:
                    connection.close()
            assert client.health()["status"] == "ok"

    def test_record_keys_cannot_traverse_paths(self, tmp_path):
        with served(tmp_path) as (client, service, server):
            secret = tmp_path / "secret.json"
            secret.write_text('{"schema": 3}')
            for key in ("../../" + str(tmp_path.name) + "/secret", "..%2f..", "ab/cd"):
                with pytest.raises(ServiceError) as err:
                    client._request("POST", "/records", {"keys": [key]})
                assert err.value.status == 404, key
            # In-process too: a malformed key never touches the filesystem.
            assert service.record("../evil") == (None, [])

    def test_service_refuses_invalid_cached_records(self, tmp_path):
        with served(tmp_path) as (client, service, server):
            cache = service.engine.cache
            bad_key = "ef" * 32
            cache.put(bad_key, {"schema": 3, "accelerator": "phi"})
            with pytest.raises(ServiceError) as err:
                client.record(bad_key)
            assert err.value.status == 502
            assert err.value.details["problems"]


class TestRetention:
    def test_finished_jobs_evicted_beyond_cap_running_jobs_kept(self, tmp_path):
        """A long-lived service must not retain every job ever accepted."""
        engine = SweepEngine()
        service = JobService(engine, workers=1, max_finished=2)
        try:
            jobs = []
            for i in range(5):
                # Distinct overrides defeat request dedup; the unknown
                # kwarg fails each job quickly, which is still terminal.
                job, _ = service.submit(
                    JobRequest(
                        experiment="table3", scale="tiny", overrides={"tag": i}
                    )
                )
                jobs.append(job)
                assert job.wait(timeout=60)
            retained = service.jobs()
            assert len(retained) == 2
            assert [job.id for job in retained] == [jobs[-2].id, jobs[-1].id]
            assert service.get(jobs[0].id) is None
        finally:
            service.drain()


class TestDrain:
    def test_drain_finishes_accepted_jobs_then_refuses_new_ones(self, tmp_path):
        with served(tmp_path) as (client, service, server):
            job = client.submit("fig12", scale="tiny")
            service.drain()
            view = service.get(job["id"]).snapshot()
            assert view["status"] == DONE, "accepted job must finish during drain"
            with pytest.raises(ServiceUnavailable):
                service.submit(JobRequest(experiment="fig12", scale="tiny"))
            with pytest.raises(ServiceError) as err:
                client.submit("fig12", scale="tiny")
            assert err.value.status == 503
            assert client.health()["status"] == "draining"
            assert service.engine._pool is None


# --------------------------------------------------------------------- #
# Property tests: request/job round-tripping
# --------------------------------------------------------------------- #
json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**31), max_value=2**31)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=16),
    lambda children: st.lists(children, max_size=3)
    | st.dictionaries(st.text(max_size=8), children, max_size=3),
    max_leaves=10,
)

requests = st.builds(
    JobRequest,
    experiment=st.sampled_from(experiment_names()),
    scale=st.sampled_from(sorted(SCALES)),
    overrides=st.dictionaries(st.text(max_size=12), json_values, max_size=4),
)


class TestRequestRoundtrip:
    @given(request=requests)
    @settings(max_examples=60, deadline=None)
    def test_request_survives_the_wire_format(self, request):
        """serialize → JSON bytes → deserialize is lossless, key-stable."""
        wire = json.loads(json.dumps(request.to_dict()))
        parsed = JobRequest.from_payload(wire)
        assert parsed == request
        assert parsed.key == request.key

    @given(
        spec=st.sampled_from(REGISTRY),
        scale=st.sampled_from(sorted(SCALES)),
    )
    @settings(max_examples=40, deadline=None)
    def test_spec_export_roundtrip_preserves_kwargs_for(self, spec, scale):
        """GET /experiments payloads rebuild into equivalent specs."""
        clone = ExperimentSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert jsonify(clone.kwargs_for(scale)) == jsonify(spec.kwargs_for(scale))
        assert clone.name == spec.name
        assert clone.uses_engine == spec.uses_engine

    @given(payload=st.dictionaries(st.text(max_size=12), json_values, max_size=5))
    @settings(max_examples=80, deadline=None)
    def test_arbitrary_payloads_raise_request_errors_only(self, payload):
        """Malformed payloads surface as RequestError (HTTP 400), never
        an unexpected exception that could take down a worker."""
        try:
            JobRequest.from_payload(payload)
        except RequestError:
            pass

    def test_tricky_overrides_echo_back_over_http(self, tmp_path):
        """Overrides survive the real HTTP hop bit-for-bit."""
        tricky = [
            {"epochs": 3, "ratio": 0.25},
            {"unicode": "spîke–Φ", "nested": {"a": [1, 2, [3, None]]}},
            {"workloads": [["vgg16", "cifar10"]], "flag": False},
        ]
        with served(tmp_path, cache=False) as (client, service, server):
            for overrides in tricky:
                job = client.submit("fig7", scale="tiny", overrides=overrides)
                assert job["request"]["overrides"] == overrides
                assert job["request"]["experiment"] == "fig7"
            service.drain()
