"""Tests for the synthetic datasets and workload extraction."""

import numpy as np
import pytest

from repro.datasets import (
    available_datasets,
    make_dataset,
    make_event_dataset,
    make_image_dataset,
    make_sequence_dataset,
    make_text_dataset,
)
from repro.workloads import (
    LayerWorkload,
    ModelWorkload,
    generate_random_workload,
    generate_workload,
    paper_workload_specs,
)


class TestSyntheticDatasets:
    def test_available(self):
        assert set(available_datasets()) == {
            "cifar10", "cifar100", "cifar10dvs", "sst2", "sst5", "mnli",
            "speechcmd",
        }

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_dataset("imagenet")

    def test_image_dataset_shapes(self):
        dataset = make_image_dataset(num_train=20, num_test=10, image_size=8)
        assert dataset.train_data.shape == (20, 3, 8, 8)
        assert dataset.test_data.shape == (10, 3, 8, 8)
        assert dataset.train_data.min() >= 0.0 and dataset.train_data.max() <= 1.0
        assert dataset.kind == "image"

    def test_image_labels_in_range(self):
        dataset = make_image_dataset(num_train=30, num_classes=5)
        assert dataset.train_labels.min() >= 0
        assert dataset.train_labels.max() < 5

    def test_event_dataset_binary(self):
        dataset = make_event_dataset(num_train=10, num_test=5, image_size=8, num_steps=3)
        assert dataset.train_data.shape == (10, 3, 2, 8, 8)
        assert set(np.unique(dataset.train_data)) <= {0.0, 1.0}
        assert dataset.kind == "event"

    def test_sequence_dataset_binary_frames(self):
        dataset = make_sequence_dataset(
            num_train=10, num_test=5, num_steps=6, num_features=16
        )
        assert dataset.train_data.shape == (10, 6, 16)
        assert set(np.unique(dataset.train_data)) <= {0.0, 1.0}
        assert dataset.kind == "sequence"

    def test_text_dataset_tokens(self):
        dataset = make_text_dataset(num_train=20, num_test=10, seq_len=8, vocab_size=64)
        assert dataset.train_data.shape == (20, 8)
        assert dataset.train_data.max() < 64
        assert dataset.kind == "text"

    def test_class_structure_exists(self):
        # Same-class samples must be closer than different-class samples.
        dataset = make_image_dataset(num_train=60, num_test=10, image_size=8, noise=0.1)
        data = dataset.train_data.reshape(60, -1)
        labels = dataset.train_labels
        same, diff = [], []
        for i in range(30):
            for j in range(i + 1, 30):
                distance = np.linalg.norm(data[i] - data[j])
                (same if labels[i] == labels[j] else diff).append(distance)
        if same and diff:
            assert np.mean(same) < np.mean(diff)

    def test_calibration_split(self):
        dataset = make_image_dataset(num_train=40, num_test=10)
        subset = dataset.calibration_split(0.25)
        assert subset.shape[0] == 10
        with pytest.raises(ValueError):
            dataset.calibration_split(0.0)

    def test_determinism(self):
        a = make_image_dataset(seed=3, num_train=10, num_test=5)
        b = make_image_dataset(seed=3, num_train=10, num_test=5)
        assert np.array_equal(a.train_data, b.train_data)


class TestLayerWorkload:
    def test_properties(self, rng):
        activations = (rng.random((10, 8)) < 0.3).astype(np.uint8)
        weights = rng.standard_normal((8, 4))
        layer = LayerWorkload("l0", activations, weights)
        assert (layer.m, layer.k, layer.n) == (10, 8, 4)
        assert layer.dense_macs == 320
        assert layer.nonzero_accumulations == int(activations.sum()) * 4
        assert np.allclose(layer.reference_output(), activations @ weights)

    def test_rejects_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            LayerWorkload("bad", np.zeros((4, 5), dtype=np.uint8), np.zeros((4, 3)))

    def test_rejects_non_binary(self, rng):
        with pytest.raises(ValueError):
            LayerWorkload("bad", np.full((2, 3), 2), np.zeros((3, 2)))


class TestModelWorkload:
    def test_aggregates(self, vgg_workload):
        assert len(vgg_workload) > 0
        assert vgg_workload.total_dense_macs > vgg_workload.total_bit_sparse_ops > 0
        assert 0.0 < vgg_workload.average_bit_density < 1.0
        assert set(vgg_workload.summary()) == set(vgg_workload.layer_names())

    def test_activation_and_weight_maps(self, vgg_workload):
        activations = vgg_workload.activation_matrices()
        weights = vgg_workload.weight_matrices()
        assert set(activations) == set(weights)

    def test_rejects_duplicate_layer_names(self, rng):
        # Regression: add() silently accepted duplicates, after which
        # summary()/activation_matrices() dropped all but the last layer.
        workload = ModelWorkload(model_name="m", dataset_name="d")
        activations = (rng.random((4, 8)) < 0.3).astype(np.uint8)
        weights = rng.standard_normal((8, 2))
        workload.add(LayerWorkload("fc1", activations, weights))
        with pytest.raises(ValueError, match="duplicate layer name"):
            workload.add(LayerWorkload("fc1", activations, weights))
        # Timestep-suffixed names stay distinct.
        workload.add(LayerWorkload("fc1@t0", activations, weights))
        workload.add(LayerWorkload("fc1@t1", activations, weights))
        assert workload.layer_names() == ["fc1", "fc1@t0", "fc1@t1"]


class TestWorkloadGeneration:
    def test_vgg_workload_is_binary(self, vgg_workload):
        for layer in vgg_workload:
            assert set(np.unique(layer.activations)) <= {0, 1}

    def test_transformer_workload(self, spikformer_workload):
        assert len(spikformer_workload) >= 5
        assert spikformer_workload.average_bit_density < 0.5

    def test_event_workload(self):
        workload = generate_workload("sdt", "cifar10dvs", batch_size=2, num_steps=2)
        assert len(workload) > 0

    def test_text_workload(self):
        workload = generate_workload("spikingbert", "mnli", batch_size=2, num_steps=2)
        assert len(workload) > 0

    def test_paper_specs(self):
        specs = paper_workload_specs()
        assert len(specs) == 12

    def test_random_workload_density(self):
        workload = generate_random_workload(density=0.2, m=100, k=64, n=16)
        assert workload[0].bit_density == pytest.approx(0.2, abs=0.05)

    def test_random_workload_invalid_density(self):
        with pytest.raises(ValueError):
            generate_random_workload(density=1.5)
