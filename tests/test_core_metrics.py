"""Unit tests for sparsity / operation metrics."""

import numpy as np
import pytest

from repro.core.calibration import PhiCalibrator
from repro.core.metrics import (
    OperationCounts,
    aggregate_breakdowns,
    aggregate_operation_counts,
    geometric_mean,
    operation_counts,
    sparsity_breakdown,
)


@pytest.fixture
def decomposition(binary_matrix, small_phi_config):
    calibrator = PhiCalibrator(small_phi_config)
    calibration = calibrator.calibrate_layer("layer0", binary_matrix)
    return calibration.decompose(binary_matrix)


class TestSparsityBreakdown:
    def test_densities_in_range(self, decomposition):
        breakdown = sparsity_breakdown(decomposition)
        for value in breakdown.as_dict().values():
            assert 0.0 <= value <= 1.0

    def test_level2_split(self, decomposition):
        breakdown = sparsity_breakdown(decomposition)
        assert breakdown.level2_density == pytest.approx(
            breakdown.level2_positive_density + breakdown.level2_negative_density
        )

    def test_level2_below_bit_density(self, decomposition):
        # The whole point of Phi: Level 2 is sparser than bit sparsity.
        breakdown = sparsity_breakdown(decomposition)
        assert breakdown.level2_density < breakdown.bit_density

    def test_total_online_density(self, decomposition):
        breakdown = sparsity_breakdown(decomposition)
        assert breakdown.total_online_density == breakdown.level2_density


class TestOperationCounts:
    def test_counts_consistent(self, decomposition):
        counts = operation_counts(decomposition)
        assert counts.dense_ops > counts.bit_sparse_ops > 0
        assert counts.phi_ops <= counts.bit_sparse_ops
        assert counts.phi_ops == counts.phi_level1_ops + counts.phi_level2_ops

    def test_speedups_at_least_one(self, decomposition):
        counts = operation_counts(decomposition)
        assert counts.speedup_over_bit >= 1.0
        assert counts.speedup_over_dense >= counts.speedup_over_bit

    def test_addition(self):
        a = OperationCounts(10, 5, 2, 1)
        b = OperationCounts(20, 8, 3, 2)
        total = a + b
        assert total.dense_ops == 30
        assert total.bit_sparse_ops == 13
        assert total.phi_ops == 8

    def test_zero_phi_ops(self):
        counts = OperationCounts(dense_ops=10, bit_sparse_ops=5, phi_level1_ops=0, phi_level2_ops=0)
        assert counts.speedup_over_bit == float("inf")

    def test_all_zero(self):
        counts = OperationCounts(0, 0, 0, 0)
        assert counts.speedup_over_bit == 1.0
        assert counts.speedup_over_dense == 1.0

    def test_aggregate(self):
        counts = [OperationCounts(10, 5, 2, 1), OperationCounts(10, 5, 2, 1)]
        total = aggregate_operation_counts(counts)
        assert total.dense_ops == 20


class TestAggregateBreakdowns:
    def test_weighted_average(self, decomposition):
        breakdown = sparsity_breakdown(decomposition)
        merged = aggregate_breakdowns([(breakdown, 100), (breakdown, 300)])
        assert merged.bit_density == pytest.approx(breakdown.bit_density)

    def test_empty(self):
        merged = aggregate_breakdowns([])
        assert merged.bit_density == 0.0


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_single_value(self):
        assert geometric_mean([3.0]) == pytest.approx(3.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
