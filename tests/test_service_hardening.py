"""Auth, rate limiting, schema versioning, audit and client retry tests.

The production-hardening surface of ``repro.service``:

* static bearer-token auth (401 without it, ``/healthz`` exempt),
* per-client rolling-window rate limiting (429 + ``Retry-After``),
* a protocol ``version`` field in every request/response (unsupported
  versions are a clear 400, never a ``KeyError``),
* an append-only JSONL audit log of every job/record mutation, and
* client-side retry/backoff: exponential delays with jitter, 429
  honouring ``Retry-After``, ``JobNotFound`` + resubmission across a
  server restart, and the explicit-``timeout=0`` fix.
"""

from __future__ import annotations

import io
import json
import threading
import urllib.error
import urllib.request
from contextlib import contextmanager

import pytest

from repro.runner import ArtifactStore, ResultCache, SweepEngine
from repro.service import (
    DONE,
    NO_RETRY,
    PROTOCOL_VERSION,
    AuditLog,
    JobNotFound,
    JobService,
    RateLimiter,
    RetryPolicy,
    ServiceClient,
    ServiceError,
    serve,
)

FAST_RETRY = RetryPolicy(attempts=3, base_delay=0.01, max_delay=0.02, jitter=0.0)


@contextmanager
def served(
    tmp_path,
    *,
    workers=2,
    name="svc",
    auth_token=None,
    rate_limiter=None,
    audit=None,
    request_timeout=60.0,
    client_token=None,
    retry=FAST_RETRY,
):
    """A live in-process service with the hardening surface configurable."""
    engine = SweepEngine(
        cache=ResultCache(tmp_path / f"{name}-cache"),
        store=ArtifactStore(tmp_path / f"{name}-store"),
    )
    service = JobService(engine, workers=workers, audit=audit)
    server = serve(
        service,
        auth_token=auth_token,
        rate_limiter=rate_limiter,
        request_timeout=request_timeout,
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(server.url, token=client_token, retry=retry)
    try:
        yield client, service, server
    finally:
        service.drain()
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


def raw_status(url: str, path: str, *, method="GET", headers=None, data=None):
    """One raw HTTP exchange, returning ``(status, decoded json body)``."""
    request = urllib.request.Request(
        url + path, method=method, headers=headers or {}, data=data
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestAuth:
    def test_endpoints_require_token_healthz_exempt(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_SERVICE_TOKEN", raising=False)
        audit = AuditLog(tmp_path / "audit.jsonl")
        with served(
            tmp_path, auth_token="sesame", audit=audit, client_token="sesame"
        ) as (client, service, server):
            # Liveness stays open: probes never need credentials.
            assert raw_status(server.url, "/healthz")[0] == 200

            for path in ("/experiments", "/jobs"):
                status, body = raw_status(server.url, path)
                assert status == 401
                assert "auth token" in body["error"]
            status, _ = raw_status(
                server.url,
                "/jobs",
                headers={"Authorization": "Bearer wrong"},
            )
            assert status == 401
            # POST bodies are drained before the 401 so keep-alive
            # connections stay in sync; a bad token can never submit.
            status, _ = raw_status(
                server.url,
                "/jobs",
                method="POST",
                data=b'{"experiment": "fig12", "scale": "tiny"}',
            )
            assert status == 401
            assert service.counts()["queued"] + service.counts()["running"] == 0

            # The right token works, via either header.
            assert client.jobs() == []
            status, _ = raw_status(
                server.url, "/jobs", headers={"X-Auth-Token": "sesame"}
            )
            assert status == 200

        events = [entry["event"] for entry in audit.entries()]
        assert events.count("auth.refused") == 4
        refused = [e for e in audit.entries() if e["event"] == "auth.refused"]
        assert all(e["actor"].startswith("peer:") for e in refused)
        # Raw tokens never appear in the audit trail.
        assert "sesame" not in (tmp_path / "audit.jsonl").read_text()

    def test_client_reads_token_from_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_TOKEN", "from-env")
        with served(tmp_path, auth_token="from-env") as (client, service, server):
            env_client = ServiceClient(server.url, retry=FAST_RETRY)
            assert env_client.health()["status"] == "ok"
            assert env_client.jobs() == []


class TestRateLimiter:
    def test_rolling_window_allows_then_refuses_then_recovers(self):
        clock = [0.0]
        limiter = RateLimiter(3, 10.0, clock=lambda: clock[0])
        for _ in range(3):
            assert limiter.allow("a") == (True, 0.0)
        allowed, retry_after = limiter.allow("a")
        assert not allowed
        assert retry_after == pytest.approx(10.0)
        # Refused requests are not counted against the window.
        assert limiter.allow("a")[1] == pytest.approx(10.0)
        # Other keys have their own budget.
        assert limiter.allow("b")[0]
        clock[0] = 10.1  # the oldest hit ages out
        assert limiter.allow("a")[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            RateLimiter(0)
        with pytest.raises(ValueError):
            RateLimiter(5, 0)

    def test_http_429_carries_retry_after_and_client_honours_it(self, tmp_path):
        limiter = RateLimiter(2, 1.0)
        sleeps: list[float] = []
        with served(tmp_path, rate_limiter=limiter) as (client, service, server):
            patient = ServiceClient(
                server.url,
                retry=RetryPolicy(attempts=8, base_delay=0.01, jitter=0.0),
                sleep=lambda s: sleeps.append(s),
            )
            # Two requests in budget, the third is limited; the client
            # retries transparently (refusals are uncounted, so the
            # retry lands once the window rolls).
            impatient = ServiceClient(server.url, retry=NO_RETRY)
            assert impatient.jobs() == []
            assert impatient.jobs() == []
            with pytest.raises(ServiceError) as err:
                impatient.jobs()
            assert err.value.status == 429
            assert float(err.value.details["retry_after"]) > 0

            # sleep is stubbed, so retries spin until the window truly
            # rolls; every sleep the client *asked for* honours the
            # server's Retry-After hint.
            import time as _time

            deadline = _time.monotonic() + 30
            while True:
                try:
                    assert patient.jobs() == []
                    break
                except ServiceError:
                    if _time.monotonic() > deadline:
                        raise
                    _time.sleep(0.05)
            assert sleeps, "client never backed off on 429"
            assert all(s > 0 for s in sleeps)


class TestVersionedSchemas:
    def test_responses_embed_protocol_version(self, tmp_path):
        with served(tmp_path) as (client, service, server):
            for path in ("/healthz", "/experiments", "/jobs"):
                _, body = raw_status(server.url, path)
                assert body["version"] == PROTOCOL_VERSION
            _, body = raw_status(server.url, "/nope")
            assert body["version"] == PROTOCOL_VERSION

    def test_unsupported_request_version_is_a_clear_400(self, tmp_path):
        with served(tmp_path) as (client, service, server):
            for bad in (99, 0, -1, "1", 1.5, True):
                status, body = raw_status(
                    server.url,
                    "/jobs",
                    method="POST",
                    data=json.dumps(
                        {"version": bad, "experiment": "fig12", "scale": "tiny"}
                    ).encode(),
                    headers={"Content-Type": "application/json"},
                )
                assert status == 400, bad
                assert "version" in body["error"]
                assert str(PROTOCOL_VERSION) in body["error"]
            # POST /records speaks the same versioning rules.
            status, body = raw_status(
                server.url,
                "/records",
                method="POST",
                data=json.dumps({"version": 99, "keys": []}).encode(),
            )
            assert status == 400
            assert "version" in body["error"]

    def test_current_and_absent_versions_accepted(self, tmp_path):
        with served(tmp_path) as (client, service, server):
            # The bundled client always declares the current version.
            job = client.submit("fig12", scale="tiny")
            assert job["version"] == PROTOCOL_VERSION
            # A pre-versioning client (no field at all) still works.
            status, body = raw_status(
                server.url,
                "/jobs",
                method="POST",
                data=b'{"experiment": "fig12", "scale": "tiny"}',
            )
            assert status in (200, 201)


class TestAuditLog:
    def test_record_and_entries_roundtrip(self, tmp_path):
        log = AuditLog(tmp_path / "nested" / "audit.jsonl")
        log.record("job.submitted", job="job-000001", actor="peer:127.0.0.1")
        log.record("job.done", job="job-000001", points=3)
        log.close()
        entries = list(log.entries())
        assert [e["event"] for e in entries] == ["job.submitted", "job.done"]
        assert entries[0]["actor"] == "peer:127.0.0.1"
        assert all("ts" in e for e in entries)

    def test_partial_trailing_line_is_skipped(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        log = AuditLog(path)
        log.record("job.submitted", job="a")
        log.close()
        with path.open("a") as handle:
            handle.write('{"ts": 1.0, "event": "job.do')  # SIGKILL mid-line
        assert [e["event"] for e in log.entries()] == ["job.submitted"]

    def test_unwritable_log_warns_once_never_raises(self, tmp_path):
        blocked = tmp_path / "file"
        blocked.write_text("not a directory")
        log = AuditLog(blocked / "audit.jsonl")
        with pytest.warns(RuntimeWarning, match="unwritable"):
            log.record("job.submitted", job="a")
        log.record("job.done", job="a")  # silent: warned already

    def test_service_mutations_are_audited(self, tmp_path):
        audit = AuditLog(tmp_path / "audit.jsonl")
        with served(tmp_path, audit=audit) as (client, service, server):
            job = client.run("fig12", scale="tiny", timeout=600)
            assert job["status"] == DONE
            client.records_for(job)
            with pytest.raises(ServiceError):
                client.record("ab" * 32)  # miss -> refusal is audited
        events = [entry["event"] for entry in audit.entries()]
        for expected in (
            "job.submitted",
            "job.started",
            "job.done",
            "record.served",
            "record.refused",
            "service.draining",
            "service.drained",
        ):
            assert expected in events, f"missing {expected} in {events}"
        done = next(e for e in audit.entries() if e["event"] == "job.done")
        assert done["points"] == job["progress"]["points"]
        assert done["job"] == job["id"]


class FakeResponse(io.BytesIO):
    """A minimal urlopen-style response for transport stubs."""

    def __init__(self, body: dict) -> None:
        super().__init__(json.dumps(body).encode())

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False


class TestClientRetry:
    def test_explicit_zero_timeout_is_not_replaced_by_default(self):
        seen: list[float] = []

        class Capturing(ServiceClient):
            def _open(self, request, timeout):
                seen.append(timeout)
                return FakeResponse({"version": 1, "status": "ok"})

        client = Capturing("http://127.0.0.1:1", timeout=60.0, retry=NO_RETRY)
        client._request("GET", "/healthz", timeout=0)
        client._request("GET", "/healthz", timeout=2.5)
        client._request("GET", "/healthz")
        assert seen == [0, 2.5, 60.0]

    def test_transport_failures_backoff_exponentially_then_succeed(self):
        sleeps: list[float] = []
        failures = 3

        class Flaky(ServiceClient):
            def _open(self, request, timeout):
                if len(sleeps) < failures:
                    raise urllib.error.URLError(ConnectionResetError("boom"))
                return FakeResponse({"version": 1, "status": "ok"})

        client = Flaky(
            "http://127.0.0.1:1",
            retry=RetryPolicy(
                attempts=5, base_delay=0.1, multiplier=2.0, max_delay=10.0, jitter=0.0
            ),
            sleep=sleeps.append,
        )
        assert client.health()["status"] == "ok"
        assert sleeps == [0.1, 0.2, 0.4]

    def test_retries_exhausted_surface_as_service_error(self):
        attempts = []

        class Dead(ServiceClient):
            def _open(self, request, timeout):
                attempts.append(request.get_method())
                raise ConnectionRefusedError("nobody home")

        client = Dead(
            "http://127.0.0.1:1",
            retry=RetryPolicy(attempts=3, base_delay=0.0, jitter=0.0),
            sleep=lambda s: None,
        )
        with pytest.raises(ServiceError, match="cannot reach service"):
            client.health()
        assert len(attempts) == 3

    def test_post_jobs_is_retried_but_shutdown_is_not(self):
        calls: list[str] = []

        class Dead(ServiceClient):
            def _open(self, request, timeout):
                calls.append(f"{request.get_method()} {request.selector}")
                raise ConnectionResetError("gone")

        client = Dead(
            "http://127.0.0.1:1",
            retry=RetryPolicy(attempts=2, base_delay=0.0, jitter=0.0),
            sleep=lambda s: None,
        )
        with pytest.raises(ServiceError):
            client.submit("fig12", scale="tiny")
        with pytest.raises(ServiceError):
            client.shutdown()
        assert sum(c.endswith("/jobs") for c in calls) == 2
        assert sum(c.endswith("/shutdown") for c in calls) == 1

    def test_deterministic_4xx_and_draining_503_never_retry(self, tmp_path):
        with served(tmp_path) as (client, service, server):
            attempts: list[str] = []
            real_open = ServiceClient._open

            class Counting(ServiceClient):
                def _open(self, request, timeout):
                    attempts.append(request.selector)
                    return real_open(self, request, timeout)

            counting = Counting(server.url, retry=FAST_RETRY)
            with pytest.raises(ServiceError) as err:
                counting._request("POST", "/jobs", {"experiment": "nope"})
            assert err.value.status == 400
            assert len(attempts) == 1
            attempts.clear()
            service.drain()
            with pytest.raises(ServiceError) as err:
                counting.submit("fig12", scale="tiny")
            assert err.value.status == 503
            assert len(attempts) == 1

    def test_retry_policy_delay_growth_and_jitter_bounds(self):
        policy = RetryPolicy(
            attempts=6, base_delay=0.5, multiplier=2.0, max_delay=3.0, jitter=0.25
        )
        exact = RetryPolicy(
            attempts=6, base_delay=0.5, multiplier=2.0, max_delay=3.0, jitter=0.0
        )
        assert [exact.delay(n) for n in range(1, 5)] == [0.5, 1.0, 2.0, 3.0]
        for n in range(1, 6):
            base = exact.delay(n)
            for _ in range(50):
                assert base * 0.75 <= policy.delay(n) <= base * 1.25


class TestJobNotFound:
    def test_unknown_job_raises_distinct_error_with_id(self, tmp_path):
        with served(tmp_path) as (client, service, server):
            with pytest.raises(JobNotFound) as err:
                client.job("job-999999")
            assert err.value.job_id == "job-999999"
            assert err.value.status == 404
            assert "resubmit" in str(err.value)
            with pytest.raises(JobNotFound):
                client.wait_for("job-999999", timeout=5, poll=0.1)

    def test_wait_for_survives_server_restart_by_resubmitting(self, tmp_path):
        # "Restart": a first service runs the job and stops; a second
        # one over the same cache/store knows nothing about the old id.
        with served(tmp_path, name="first") as (client, service, server):
            job = client.run("fig12", scale="tiny", timeout=600)
            stale_id = job["id"]
        with served(tmp_path, name="first") as (client2, service2, server2):
            request = {"experiment": "fig12", "scale": "tiny", "overrides": {}}
            view = client2.wait_for(
                stale_id, timeout=600, poll=0.2, request=request
            )
            assert view["status"] == DONE
            # The wait landed on a *resubmitted* job owned by the new
            # service (ids may coincide: each service numbers from 1).
            assert [j.id for j in service2.jobs()] == [view["id"]]
            # The restarted service served it all from the shared cache:
            # the resubmission cost zero re-simulation.
            assert view["progress"]["executed"] == 0
            assert view["progress"]["cache_hits"] == view["progress"]["points"]


class TestServeCliDrainAck:
    def test_unexpected_crash_drains_logs_cause_and_exits_nonzero(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.service import cli as service_cli

        drained = []

        class ExplodingServer:
            url = "http://127.0.0.1:0"

            def serve_forever(self):
                raise RuntimeError("socket table corrupted")

            def server_close(self):
                pass

        real_drain = JobService.drain
        monkeypatch.setattr(
            JobService, "drain", lambda self: (drained.append(True), real_drain(self))
        )
        monkeypatch.setattr(
            service_cli, "serve", lambda *args, **kwargs: ExplodingServer()
        )
        code = service_cli.main(
            [
                "serve",
                "--port",
                "0",
                "--no-cache",
                "--store-dir",
                str(tmp_path / "store"),
            ]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert drained, "drain must still run after an unexpected crash"
        assert "RuntimeError: socket table corrupted" in captured.err
        assert "drained; service stopped after error" in captured.out
        assert "drained; service stopped\n" not in captured.out

    def test_clean_loop_exit_still_acks_and_returns_zero(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.service import cli as service_cli

        class QuietServer:
            url = "http://127.0.0.1:0"

            def serve_forever(self):
                raise KeyboardInterrupt

            def server_close(self):
                pass

        monkeypatch.setattr(
            service_cli, "serve", lambda *args, **kwargs: QuietServer()
        )
        code = service_cli.main(
            [
                "serve",
                "--port",
                "0",
                "--no-cache",
                "--store-dir",
                str(tmp_path / "store"),
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "drained; service stopped" in captured.out
