"""Tests for the analysis tools (t-SNE, clustering, traffic)."""

import numpy as np
import pytest

from repro.analysis import (
    activation_traffic,
    cluster_stats,
    distribution_overlap,
    expected_random_distance,
    pairwise_squared_distances,
    pattern_histogram,
    top_pattern_coverage,
    tsne,
    weight_traffic,
)
from repro.core import PhiConfig
from repro.hw import ArchConfig, PhiSimulator


class TestTSNE:
    def test_pairwise_distances(self):
        data = np.array([[0.0, 0.0], [3.0, 4.0]])
        distances = pairwise_squared_distances(data)
        assert distances[0, 1] == pytest.approx(25.0)
        assert distances[0, 0] == 0.0

    def test_embedding_shape(self, rng):
        data = rng.standard_normal((40, 10))
        result = tsne(data, num_iterations=60, seed=0)
        assert result.embedding.shape == (40, 2)
        assert np.isfinite(result.embedding).all()
        assert result.kl_divergence >= 0

    def test_separates_clear_clusters(self, rng):
        cluster_a = rng.standard_normal((25, 8)) * 0.1
        cluster_b = rng.standard_normal((25, 8)) * 0.1 + 10.0
        data = np.vstack([cluster_a, cluster_b])
        result = tsne(data, num_iterations=150, seed=1)
        emb = result.embedding
        centroid_a = emb[:25].mean(axis=0)
        centroid_b = emb[25:].mean(axis=0)
        spread = max(emb[:25].std(), emb[25:].std())
        assert np.linalg.norm(centroid_a - centroid_b) > 2 * spread

    def test_rejects_tiny_input(self, rng):
        with pytest.raises(ValueError):
            tsne(rng.standard_normal((3, 4)))


class TestClustering:
    def test_pattern_histogram(self):
        rows = np.array([[1, 0], [1, 0], [0, 1]], dtype=np.uint8)
        histogram = pattern_histogram(rows)
        assert max(histogram.values()) == 2

    def test_top_pattern_coverage(self):
        rows = np.tile(np.array([[1, 0, 1, 0]], dtype=np.uint8), (50, 1))
        assert top_pattern_coverage(rows, top_k=1) == 1.0

    def test_cluster_stats_structured_vs_random(self, binary_matrix, rng):
        structured = cluster_stats(binary_matrix, num_clusters=8, seed=0)
        random_rows = (rng.random(binary_matrix.shape) < binary_matrix.mean()).astype(np.uint8)
        random = cluster_stats(random_rows, num_clusters=8, seed=0)
        # The structured activations cluster much better than random data.
        assert structured.normalized_cluster_score < random.normalized_cluster_score

    def test_cluster_stats_fields(self, binary_matrix):
        stats = cluster_stats(binary_matrix, num_clusters=4)
        assert stats.num_rows == binary_matrix.shape[0]
        assert 0 < stats.num_unique_rows <= stats.num_rows
        assert 0.0 < stats.top_pattern_coverage <= 1.0
        assert 0.0 < stats.unique_fraction <= 1.0

    def test_cluster_stats_rejects_empty(self):
        with pytest.raises(ValueError):
            cluster_stats(np.zeros((0, 4), dtype=np.uint8))

    def test_expected_random_distance(self):
        assert expected_random_distance(16, 0.5, 1) == pytest.approx(8.0)
        with pytest.raises(ValueError):
            expected_random_distance(0, 0.5, 1)

    def test_distribution_overlap_identical(self, binary_matrix):
        assert distribution_overlap(binary_matrix, binary_matrix) == pytest.approx(1.0)

    def test_distribution_overlap_disjoint(self):
        a = np.zeros((10, 4), dtype=np.uint8)
        b = np.ones((10, 4), dtype=np.uint8)
        assert distribution_overlap(a, b) == 0.0

    def test_distribution_overlap_split_halves(self, binary_matrix):
        # Compare partition-width (8-bit) slices, as Phi does: the clustered
        # halves share far more patterns than disjoint data would.
        half = binary_matrix.shape[0] // 2
        overlap = distribution_overlap(
            binary_matrix[:half, :8], binary_matrix[half:, :8]
        )
        assert overlap > 0.3


class TestTraffic:
    @pytest.fixture(scope="class")
    def simulation(self, vgg_workload):
        simulator = PhiSimulator(
            ArchConfig(),
            PhiConfig(partition_size=16, num_patterns=32, calibration_samples=2000),
        )
        return simulator.run(vgg_workload)

    def test_activation_traffic(self, simulation):
        traffic = activation_traffic(simulation)
        assert traffic.dense > 0
        assert traffic.phi_compressed < traffic.phi_uncompressed
        assert traffic.compressed_ratio < traffic.uncompressed_ratio

    def test_weight_traffic(self, simulation):
        traffic = weight_traffic(simulation)
        assert traffic.dense > 0
        # Without the prefetcher the PWP traffic dwarfs the dense weights.
        assert traffic.without_prefetch_ratio > 1.5
        assert traffic.phi_with_prefetch < traffic.phi_without_prefetch
        assert 0.0 < traffic.prefetch_saving < 1.0
