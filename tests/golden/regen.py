"""Regenerate the golden simulator outputs frozen in ``tests/golden/*.json``.

The golden suite pins the exact cycle, traffic and energy numbers the
cycle-level simulator produces for a small set of fixed-seed workloads and
configurations.  Any refactor of the hot paths (vectorization, caching,
parallel sweeps) must keep these outputs bit-for-bit identical; a change in
the *model* itself requires regenerating the files in a dedicated commit:

    PYTHONPATH=src python tests/golden/regen.py

``tests/test_golden_simulator.py`` imports :data:`GOLDEN_CASES` and
:func:`run_case` from this module so the regeneration script and the
regression test can never disagree about what is being compared.

Besides the Phi simulator cases, the suite freezes every baseline
accelerator (:data:`GOLDEN_BASELINE_CASES`): the baselines were ported
from ad-hoc report classes onto the shared ``repro.hw.pipeline``
interface, and these files pin that port — and any future refactor — to
bit-exact cycle/traffic/energy outputs.
"""

from __future__ import annotations

import json
import pathlib
import sys

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent

from repro.core.config import PhiConfig
from repro.hw.config import ArchConfig
from repro.hw.simulator import PhiSimulator, SimulationResult
from repro.workloads.generator import generate_workload

#: Fixed-seed workloads: (model, dataset, batch_size, num_steps, seed).
GOLDEN_WORKLOADS: tuple[tuple[str, str, int, int, int], ...] = (
    ("vgg16", "cifar10", 2, 2, 0),
    ("spikformer", "cifar100", 2, 2, 0),
    ("spikebert", "sst2", 2, 2, 0),
)

#: Simulator configurations exercised by the suite.  ``base`` is the
#: default tiling at a reduced pattern count; ``narrow`` uses a narrower
#: partition, smaller tiles and smaller packs so the partial-sum, packing
#: and tail-tile paths are all covered.
GOLDEN_CONFIGS: dict[str, dict[str, dict]] = {
    "base": {
        "phi": {"partition_size": 16, "num_patterns": 16, "calibration_samples": 1500},
        "arch": {"tile_k": 16, "num_patterns": 16},
    },
    "narrow": {
        "phi": {"partition_size": 8, "num_patterns": 8, "calibration_samples": 1000},
        "arch": {
            "tile_m": 64,
            "tile_k": 8,
            "tile_n": 16,
            "num_patterns": 8,
            "pack_size": 4,
        },
    },
}

#: Every (workload, config) golden case as ``(case_name, workload, config)``.
GOLDEN_CASES: tuple[tuple[str, tuple[str, str, int, int, int], str], ...] = tuple(
    (f"{model}_{dataset}_{config_name}", workload, config_name)
    for workload in GOLDEN_WORKLOADS
    for model, dataset, *_ in [workload]
    for config_name in GOLDEN_CONFIGS
)


#: Baseline accelerators frozen by the suite (registry order).
BASELINE_NAMES: tuple[str, ...] = ("eyeriss", "ptb", "sato", "spinalflow", "stellar")

#: Fixed-seed workloads the baselines are frozen on (a convolutional and a
#: transformer model, covering both activation shapes).
GOLDEN_BASELINE_WORKLOADS: tuple[tuple[str, str, int, int, int], ...] = (
    ("vgg16", "cifar10", 2, 2, 0),
    ("spikformer", "cifar100", 2, 2, 0),
)

#: Every (baseline, workload) golden case as ``(case_name, name, workload)``.
GOLDEN_BASELINE_CASES: tuple[tuple[str, str, tuple[str, str, int, int, int]], ...] = tuple(
    (f"baseline_{name}_{model}_{dataset}", name, workload)
    for workload in GOLDEN_BASELINE_WORKLOADS
    for model, dataset, *_ in [workload]
    for name in BASELINE_NAMES
)


def build_simulator(config_name: str) -> PhiSimulator:
    """Construct the simulator for one named golden configuration."""
    spec = GOLDEN_CONFIGS[config_name]
    return PhiSimulator(ArchConfig(**spec["arch"]), PhiConfig(**spec["phi"]))


def summarize(result: SimulationResult) -> dict:
    """Flatten a :class:`SimulationResult` into JSON-friendly exact values."""
    ops = result.aggregate_operations()
    breakdown = result.aggregate_breakdown()
    return {
        "model": result.model_name,
        "dataset": result.dataset_name,
        "total_cycles": result.total_cycles,
        "total_operations": result.total_operations,
        "total_dram_bytes": result.total_dram_bytes,
        "energy_joules": result.energy_joules,
        "energy": {
            "core": result.energy.core,
            "buffer": result.energy.buffer,
            "dram": result.energy.dram,
        },
        "operation_counts": {
            "dense_ops": ops.dense_ops,
            "bit_sparse_ops": ops.bit_sparse_ops,
            "phi_level1_ops": ops.phi_level1_ops,
            "phi_level2_ops": ops.phi_level2_ops,
        },
        "breakdown": breakdown.as_dict(),
        "layers": [
            {
                "name": layer.layer_name,
                "m": layer.m,
                "k": layer.k,
                "n": layer.n,
                "compute_cycles": layer.compute_cycles,
                "memory_cycles": layer.memory_cycles,
                "preprocessor_cycles": layer.preprocessor_cycles,
                "l1_cycles": layer.l1_cycles,
                "l2_cycles": layer.l2_cycles,
                "neuron_cycles": layer.neuron_cycles,
                "activation_bytes": layer.activation_bytes,
                "activation_bytes_uncompressed": layer.activation_bytes_uncompressed,
                "weight_bytes": layer.weight_bytes,
                "pwp_bytes_prefetched": layer.pwp_bytes_prefetched,
                "pwp_bytes_unfiltered": layer.pwp_bytes_unfiltered,
                "output_bytes": layer.output_bytes,
                "psum_spill_bytes": layer.psum_spill_bytes,
                "pattern_match_comparisons": layer.pattern_match_comparisons,
                "dram_bytes": layer.dram_bytes,
                "energy_joules": layer.energy.total,
            }
            for layer in result.layers
        ],
    }


def run_case(workload_spec: tuple[str, str, int, int, int], config_name: str) -> dict:
    """Simulate one golden case from scratch and return its summary."""
    model, dataset, batch_size, num_steps, seed = workload_spec
    workload = generate_workload(
        model, dataset, batch_size=batch_size, num_steps=num_steps, seed=seed
    )
    result = build_simulator(config_name).run(workload)
    return summarize(result)


def summarize_baseline(report) -> dict:
    """Flatten a baseline accelerator run into JSON-friendly exact values."""
    energy = report.energy_breakdown()
    return {
        "accelerator": report.accelerator,
        "model": report.model_name,
        "dataset": report.dataset_name,
        "area_mm2": report.area_mm2,
        "total_cycles": report.total_cycles,
        "runtime_seconds": report.runtime_seconds,
        "total_operations": report.total_operations,
        "total_dram_bytes": report.total_dram_bytes,
        "throughput_gops": report.throughput_gops,
        "energy_joules": report.energy_joules,
        "energy_efficiency_gops_per_joule": report.energy_efficiency_gops_per_joule,
        "area_efficiency_gops_per_mm2": report.area_efficiency_gops_per_mm2,
        "energy": {
            "core": energy["core"],
            "buffer": energy["buffer"],
            "dram": energy["dram"],
        },
        "layers": [
            {
                "name": layer.layer_name,
                "compute_cycles": layer.compute_cycles,
                "memory_cycles": layer.memory_cycles,
                "total_cycles": layer.total_cycles,
                "dram_bytes": layer.dram_bytes,
                "operations": layer.operations,
            }
            for layer in report.layers
        ],
    }


def run_baseline_case(
    baseline_name: str, workload_spec: tuple[str, str, int, int, int]
) -> dict:
    """Simulate one baseline golden case from scratch and return its summary."""
    from repro.baselines import get_baseline

    model, dataset, batch_size, num_steps, seed = workload_spec
    workload = generate_workload(
        model, dataset, batch_size=batch_size, num_steps=num_steps, seed=seed
    )
    report = get_baseline(baseline_name, ArchConfig()).simulate(workload)
    return summarize_baseline(report)


def golden_path(case_name: str) -> pathlib.Path:
    """Location of the frozen JSON for one case."""
    return GOLDEN_DIR / f"{case_name}.json"


def main() -> None:
    for case_name, workload_spec, config_name in GOLDEN_CASES:
        summary = run_case(workload_spec, config_name)
        path = golden_path(case_name)
        path.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path} (total_cycles={summary['total_cycles']})")
    for case_name, baseline_name, workload_spec in GOLDEN_BASELINE_CASES:
        summary = run_baseline_case(baseline_name, workload_spec)
        path = golden_path(case_name)
        path.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path} (total_cycles={summary['total_cycles']})")


if __name__ == "__main__":
    sys.exit(main())
