"""Tests for the unified accelerator-model pipeline (`repro.hw.pipeline`).

Covers the stage/pipeline composition machinery, the canonical
result-schema math, the batched ``simulate_many`` paths, and — the
structural acceptance criterion — that every accelerator implements the
:class:`~repro.hw.pipeline.AcceleratorModel` interface and that no
experiment harness or report module bypasses it.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.baselines import BASELINE_CLASSES, BaselineAccelerator, get_baseline
from repro.hw import ArchConfig, EnergyBreakdown, PhiSimulator
from repro.hw.pipeline import (
    AcceleratorModel,
    LayerContext,
    LayerResult,
    Pipeline,
    RunResult,
    Stage,
    StageRecord,
)
from repro.runner import SweepEngine, simulate_many, simulate_point
from repro.runner.engine import _pending_units
from repro.workloads import generate_random_workload

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"


# --------------------------------------------------------------------- #
# Stage / Pipeline machinery
# --------------------------------------------------------------------- #
class _RecordingStage:
    def __init__(self, name, builds_result=False):
        self.name = name
        self.builds_result = builds_result

    def run(self, ctx):
        ctx.scratch.setdefault("order", []).append(self.name)
        if self.builds_result:
            ctx.result = LayerResult(layer_name="toy", compute_cycles=1.0)
        return StageRecord(name=self.name, cycles=1.0)


class TestPipeline:
    def test_stages_run_in_order_and_records_attach(self):
        pipeline = Pipeline(
            [_RecordingStage("a"), _RecordingStage("b", builds_result=True)]
        )
        ctx = LayerContext(layer=None)
        result = pipeline.run_layer(ctx)
        assert ctx.scratch["order"] == ["a", "b"]
        assert [record.name for record in result.stages] == ["a", "b"]

    def test_duplicate_stage_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate stage names"):
            Pipeline([_RecordingStage("a"), _RecordingStage("a")])

    def test_pipeline_without_result_builder_raises(self):
        pipeline = Pipeline([_RecordingStage("a")])
        with pytest.raises(RuntimeError, match="without a stage building"):
            pipeline.run_layer(LayerContext(layer=None))

    def test_stages_satisfy_the_protocol(self):
        assert isinstance(_RecordingStage("a"), Stage)


# --------------------------------------------------------------------- #
# Canonical result schema math
# --------------------------------------------------------------------- #
def _layer(name="l0", compute=100.0, memory=50.0, operations=1000, **kwargs):
    return LayerResult(
        layer_name=name,
        compute_cycles=compute,
        memory_cycles=memory,
        operations=operations,
        **kwargs,
    )


class TestLayerResult:
    def test_total_cycles_is_compute_memory_max(self):
        assert _layer(compute=10.0, memory=25.0).total_cycles == 25.0
        assert _layer(compute=30.0, memory=25.0).total_cycles == 30.0

    def test_dram_bytes_sums_traffic_components(self):
        layer = _layer(
            activation_bytes=1.0,
            weight_bytes=2.0,
            pwp_bytes_prefetched=3.0,
            output_bytes=4.0,
            psum_spill_bytes=5.0,
        )
        assert layer.dram_bytes == 15.0


class TestRunResult:
    def _result(self, **kwargs):
        params = {
            "accelerator": "toy",
            "model_name": "m",
            "dataset_name": "d",
            "frequency_hz": 1e9,
            "area_mm2": 2.0,
            "layers": [
                _layer("l0", compute=100.0, memory=50.0, operations=1000),
                _layer("l1", compute=200.0, memory=300.0, operations=3000),
            ],
        }
        params.update(kwargs)
        return RunResult(**params)

    def test_derived_metrics(self):
        result = self._result(
            run_energy=EnergyBreakdown(core=1e-9, buffer=2e-9, dram=1e-9)
        )
        assert result.total_cycles == 400.0
        assert result.runtime_seconds == 400.0 / 1e9
        assert result.total_operations == 4000
        assert result.throughput_gops == pytest.approx(4000 / 400e-9 / 1e9)
        assert result.energy_joules == pytest.approx(4e-9)
        assert result.energy_efficiency_gops_per_joule == pytest.approx(
            4000 / 4e-9 / 1e9
        )
        assert result.area_efficiency_gops_per_mm2 == pytest.approx(
            result.throughput_gops / 2.0
        )
        assert result.energy_breakdown() == {
            "core": 1e-9,
            "buffer": 2e-9,
            "dram": 1e-9,
        }

    def test_zero_division_guards(self):
        empty = RunResult(accelerator="toy", frequency_hz=1e9)
        assert empty.throughput_gops == 0.0
        assert empty.energy_efficiency_gops_per_joule == 0.0
        assert empty.area_efficiency_gops_per_mm2 == 0.0

    def test_layer_energy_fold_used_without_run_energy(self):
        result = self._result()
        result.layers[0].energy = EnergyBreakdown(core=1.0, buffer=2.0, dram=3.0)
        result.layers[1].energy = EnergyBreakdown(core=0.5, buffer=0.5, dram=0.5)
        assert result.energy_joules == pytest.approx(7.5)
        assert result.core_energy == pytest.approx(1.5)

    def test_frequency_derived_from_config(self):
        arch = ArchConfig()
        result = RunResult(accelerator="phi", config=arch)
        assert result.frequency_hz == arch.frequency_hz


# --------------------------------------------------------------------- #
# The Phi stage graph
# --------------------------------------------------------------------- #
class TestPhiStageGraph:
    @pytest.fixture(scope="class")
    def phi_layer_result(self):
        workload = generate_random_workload(density=0.2, m=64, k=32, n=16, seed=0)
        from repro.core import PhiConfig

        simulator = PhiSimulator(
            ArchConfig(),
            PhiConfig(partition_size=16, num_patterns=8, calibration_samples=500),
        )
        return simulator.simulate_layer(workload[0])

    def test_stage_names(self, phi_layer_result):
        assert [record.name for record in phi_layer_result.stages] == [
            "tiling",
            "preprocess",
            "compute",
            "dram",
            "energy",
        ]

    def test_stage_records_cross_check_the_layer(self, phi_layer_result):
        stages = {record.name: record for record in phi_layer_result.stages}
        assert stages["preprocess"].cycles == phi_layer_result.preprocessor_cycles
        assert stages["compute"].cycles == phi_layer_result.compute_cycles
        assert stages["dram"].cycles == phi_layer_result.memory_cycles
        assert stages["dram"].dram_bytes == phi_layer_result.dram_bytes
        assert stages["energy"].energy_joules == phi_layer_result.energy.total


# --------------------------------------------------------------------- #
# Batched simulation
# --------------------------------------------------------------------- #
class TestSimulateMany:
    def test_model_level_batch_matches_per_workload_calls(self):
        workloads = [
            generate_random_workload(density=0.1, m=64, k=32, n=16, seed=s)
            for s in (0, 1)
        ]
        model = get_baseline("eyeriss")
        batched = model.simulate_many(workloads)
        single = [model.simulate(w) for w in workloads]
        for a, b in zip(batched, single):
            assert a.total_cycles == b.total_cycles
            assert a.energy_joules == b.energy_joules

    def test_engine_batch_matches_per_point_execution(self, tiny_points):
        batched = SweepEngine(jobs=1).run(tiny_points)
        per_point = [simulate_point(point) for point in tiny_points]
        assert json.loads(json.dumps(batched)) == json.loads(
            json.dumps(per_point)
        )

    def test_simulate_many_preserves_order(self, tiny_points):
        records = simulate_many(tiny_points)
        assert [r["accelerator"] for r in records] == [
            p.accelerator for p in tiny_points
        ]

    @pytest.fixture(scope="class")
    def tiny_points(self):
        from repro.experiments.common import TINY
        from repro.runner import SweepPoint, WorkloadSpec

        spec = WorkloadSpec("vgg16", "cifar10", batch_size=2, num_steps=2)
        return [
            SweepPoint(workload=spec, arch=TINY.arch_config(), phi=TINY.phi_config()),
            SweepPoint(workload=spec, arch=TINY.arch_config(), accelerator="eyeriss"),
            SweepPoint(workload=spec, arch=TINY.arch_config(), accelerator="stellar"),
        ]


class TestPendingUnits:
    def _points(self, specs, phi=None):
        from repro.experiments.common import TINY
        from repro.runner import SweepPoint

        return [
            SweepPoint(
                workload=spec,
                arch=TINY.arch_config(),
                phi=phi or TINY.phi_config(),
            )
            for spec in specs
        ]

    def test_groups_by_workload_and_config(self):
        from dataclasses import replace

        from repro.runner import WorkloadSpec

        base = WorkloadSpec("vgg16", "cifar10", batch_size=2, num_steps=2)
        other = WorkloadSpec("resnet18", "cifar10", batch_size=2, num_steps=2)
        paft = replace(base, paft_strength=0.5)
        points = self._points([base, base, other, paft])
        pending = {f"k{i}": [i] for i in range(len(points))}
        units = _pending_units(points, pending)
        # Same (spec, PhiConfig) -> one unit; the PAFT variant has its own
        # calibration (computed on the aligned workload) so it is its own
        # unit — base-workload sharing happens through the artifact store.
        assert sorted(map(sorted, units)) == [["k0", "k1"], ["k2"], ["k3"]]

    def test_distinct_configs_are_distinct_units(self):
        from repro.experiments.common import TINY
        from repro.runner import SweepPoint, WorkloadSpec

        spec = WorkloadSpec("vgg16", "cifar10", batch_size=2, num_steps=2)
        points = [
            SweepPoint(
                workload=spec,
                arch=TINY.arch_config(num_patterns=q),
                phi=TINY.phi_config(num_patterns=q),
            )
            for q in (8, 16)
        ]
        pending = {f"k{i}": [i] for i in range(len(points))}
        units = _pending_units(points, pending)
        assert sorted(map(sorted, units)) == [["k0"], ["k1"]]


# --------------------------------------------------------------------- #
# Structural enforcement: nothing bypasses AcceleratorModel
# --------------------------------------------------------------------- #
class TestAcceleratorModelInterface:
    """Acceptance criterion: one interface, no bypasses anywhere."""

    #: Tokens that would mean a module is building or driving an
    #: accelerator model directly instead of going through the sweep
    #: engine's records.
    FORBIDDEN = (
        "PhiSimulator",
        "PhiAccelerator",
        "get_baseline",
        "get_accelerator",
        "BaselineAccelerator",
        "SpikingEyeriss(",
        "PTB(",
        "SATO(",
        "SpinalFlow(",
        "Stellar(",
        ".simulate(",
        ".simulate_layer(",
        ".run_layer(",
    )

    def test_phi_simulator_implements_the_interface(self):
        assert issubclass(PhiSimulator, AcceleratorModel)

    def test_every_baseline_implements_the_interface(self):
        for name, cls in BASELINE_CLASSES.items():
            assert issubclass(cls, AcceleratorModel), name

    def test_baselines_do_not_bypass_the_shared_pipeline(self):
        """Baselines customise stages/hooks, never the simulate entry points."""
        for name, cls in BASELINE_CLASSES.items():
            assert cls.simulate is BaselineAccelerator.simulate, name
            assert cls.simulate_layer is BaselineAccelerator.simulate_layer, name

    def test_inconsistent_dram_override_fails_loudly(self):
        """layer_dram_bytes overrides that desync latency from the traffic
        component fields must raise, not silently disagree."""

        class BrokenTraffic(BaselineAccelerator):
            name = "broken"

            def layer_compute_cycles(self, layer):
                return 1.0

            def layer_dram_bytes(self, layer):
                return 1e6  # not the sum of the component fields

        workload = generate_random_workload(density=0.2, m=16, k=16, n=8, seed=0)
        with pytest.raises(ValueError, match="disagrees"):
            BrokenTraffic().simulate_layer(workload[0])

    def test_models_emit_canonical_results(self):
        workload = generate_random_workload(density=0.2, m=32, k=32, n=8, seed=7)
        for name in BASELINE_CLASSES:
            result = get_baseline(name).simulate(workload)
            assert isinstance(result, RunResult), name
            assert result.accelerator == name
            for layer in result.layers:
                assert isinstance(layer, LayerResult), name
                assert [record.name for record in layer.stages] == [
                    "compute",
                    "dram",
                ], name

    def test_no_harness_or_report_module_touches_models_directly(self):
        offenders = []
        for package in ("experiments", "report"):
            for path in sorted((SRC / package).glob("*.py")):
                source = path.read_text()
                for token in self.FORBIDDEN:
                    if token in source:
                        offenders.append(f"{package}/{path.name}: {token}")
        assert not offenders, (
            "experiment harnesses and report modules must consume the "
            "canonical sweep records, not accelerator models; found "
            f"{offenders}"
        )

    def test_engine_is_the_only_runner_module_building_models(self):
        offenders = []
        for path in sorted((SRC / "runner").glob("*.py")):
            if path.name == "engine.py":
                continue
            source = path.read_text()
            for token in self.FORBIDDEN:
                if token in source:
                    offenders.append(f"runner/{path.name}: {token}")
        assert not offenders, (
            "model_for() in runner/engine.py is the single place "
            f"accelerator models are built; found {offenders}"
        )
