"""Documentation consistency: links resolve, generated tables match code."""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments import experiment_names
from repro.experiments.common import scales_markdown_table
from repro.report.linkcheck import check_file

ROOT = pathlib.Path(__file__).resolve().parent.parent

DOCS = [
    ROOT / "README.md",
    ROOT / "DESIGN.md",
    ROOT / "examples" / "README.md",
]


@pytest.mark.parametrize("path", DOCS, ids=lambda p: str(p.relative_to(ROOT)))
def test_markdown_links_resolve(path):
    assert path.exists(), f"{path} missing"
    assert check_file(path) == []


def test_design_scale_table_is_generated_from_code():
    """The DESIGN.md tier table must match scales_markdown_table() exactly."""
    text = (ROOT / "DESIGN.md").read_text()
    begin = text.index("<!-- scales-table:begin -->")
    end = text.index("<!-- scales-table:end -->")
    embedded = text[begin:end].splitlines()[1:]
    embedded = "\n".join(line for line in embedded if line.strip())
    assert embedded == scales_markdown_table(), (
        "DESIGN.md tier table out of date; paste the output of "
        "repro.experiments.common.scales_markdown_table() between the "
        "scales-table markers"
    )


def test_readme_perf_table_is_generated_from_trajectory():
    """The README perf table must match perf_markdown_table() exactly."""
    from repro.bench.cli import perf_markdown_table

    text = (ROOT / "README.md").read_text()
    begin = text.index("<!-- perf-table:begin -->")
    end = text.index("<!-- perf-table:end -->")
    embedded = text[begin:end].splitlines()[1:]
    embedded = "\n".join(line for line in embedded if line.strip())
    assert embedded == perf_markdown_table(ROOT / "BENCH_sweep.json"), (
        "README perf table out of date; paste the output of "
        "repro.bench.cli.perf_markdown_table('BENCH_sweep.json') between "
        "the perf-table markers"
    )


def test_readme_covers_every_registered_experiment():
    text = (ROOT / "README.md").read_text()
    for name in experiment_names():
        assert f"`{name}`" in text, f"README.md missing registry entry {name}"


def test_readme_documents_the_cli():
    text = (ROOT / "README.md").read_text()
    for command in ("python -m repro.report", "python -m repro.runner", "pip install -e ."):
        assert command in text
