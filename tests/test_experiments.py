"""Integration tests: every experiment harness runs and its headline
qualitative claims hold at the TINY scale."""

import numpy as np
import pytest

from repro.experiments import (
    TINY,
    run_discussion,
    run_fig7_pattern_sweep,
    run_fig7_tile_sweep,
    run_fig9,
    run_fig10,
    run_fig12,
    run_table2,
    run_table3,
    run_table4,
)
from repro.experiments.fig8 import compare_workload


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table2(TINY)

    def test_all_accelerators_present(self, result):
        names = {row.accelerator for row in result.rows}
        assert names == {"eyeriss", "ptb", "sato", "spinalflow", "stellar", "phi"}

    def test_phi_wins_throughput_and_area_efficiency(self, result):
        phi = result.row("phi")
        for row in result.rows:
            if row.accelerator != "phi":
                assert phi.speedup_vs_eyeriss >= row.speedup_vs_eyeriss * 0.95
                assert phi.area_efficiency_gops_mm2 >= row.area_efficiency_gops_mm2

    def test_eyeriss_is_reference(self, result):
        assert result.row("eyeriss").speedup_vs_eyeriss == pytest.approx(1.0)

    def test_phi_area_is_smallest(self, result):
        phi = result.row("phi")
        assert phi.area_mm2 <= min(r.area_mm2 for r in result.rows)

    def test_formatted_output(self, result):
        text = result.formatted()
        assert "phi" in text and "eyeriss" in text


class TestTable3:
    def test_breakdown_matches_paper(self):
        result = run_table3()
        assert result.total_area_mm2 == pytest.approx(0.663, abs=0.01)
        assert result.total_power_mw == pytest.approx(346.5, abs=1.0)
        assert result.row("buffer").area_mm2 == pytest.approx(0.452)
        assert result.row("l1_processor").power_mw == pytest.approx(68.2)
        # The buffer dominates both area and power (paper Section 5.3.3).
        assert result.row("buffer").area_mm2 == max(r.area_mm2 for r in result.rows)
        assert result.row("buffer").power_mw == max(r.power_mw for r in result.rows)
        assert "total" in result.formatted()


class TestTable4:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table4(
            TINY,
            workloads=(("vgg16", "cifar10"), ("spikformer", "cifar100")),
            include_random=True,
        )

    def test_snn_rows_beat_bit_sparsity(self, result):
        for row in result.rows:
            assert row.speedup_over_bit >= 1.0
            assert row.speedup_over_dense > row.speedup_over_bit

    def test_l2_density_below_bit_density(self, result):
        for row in result.rows:
            assert row.l2_density < row.bit_density

    def test_random_rows_included(self, result):
        random_rows = [r for r in result.rows if r.dataset == "random"]
        assert len(random_rows) == 4

    def test_snn_speedup_beats_random_at_similar_density(self, result):
        vgg = result.row("vgg16", "cifar10")
        random10 = result.row("random10", "random")
        # Structured SNN activations yield more Phi benefit than random
        # matrices of comparable density (paper Section 5.6).
        assert vgg.speedup_over_bit >= random10.speedup_over_bit * 0.9


class TestFig7:
    def test_tile_sweep_shapes(self):
        points = run_fig7_tile_sweep(TINY, tile_sizes=(8, 16, 32))
        assert [p.k_tile for p in points] == [8, 16, 32]
        for point in points:
            assert point.phi_cycles <= point.bit_cycles
            assert point.optimal_cycles <= point.phi_cycles + 1e-9
            assert 0.0 <= point.element_density <= 1.0

    def test_pattern_sweep_monotonic_memory(self):
        points = run_fig7_pattern_sweep(TINY, pattern_counts=(8, 32))
        assert points[0].pwp_memory_bytes <= points[1].pwp_memory_bytes
        for point in points:
            assert point.phi_cycles <= point.bit_cycles


class TestFig8:
    def test_single_workload_comparison(self):
        comparison = compare_workload("vgg16", "cifar10", TINY)
        assert set(comparison.speedup) == {
            "eyeriss", "ptb", "sato", "spinalflow", "stellar", "phi", "phi_paft",
        }
        assert comparison.speedup["eyeriss"] == pytest.approx(1.0)
        assert comparison.speedup["phi"] > 1.0
        # PAFT speeds Phi up further (or at least does not slow it down).
        assert comparison.speedup["phi_paft"] >= comparison.speedup["phi"] * 0.98
        # Energy is normalised to Phi without PAFT.
        assert comparison.energy["phi"] == pytest.approx(1.0)
        assert comparison.energy["eyeriss"] > 1.0


class TestFig9And10:
    def test_fig9_paft_improves_clustering(self):
        result = run_fig9(TINY)
        assert 0.0 <= result.train_test_overlap <= 1.0
        assert result.clustering_improved

    def test_fig10_paft_reduces_element_density(self):
        result = run_fig10(TINY, workloads=(("vgg16", "cifar10"),))
        pair = result.pair("vgg16", "cifar10")
        assert pair.density_with_paft <= pair.density_without_paft
        assert 0.0 <= pair.improvement <= 1.0


class TestFig12AndDiscussion:
    def test_fig12_traffic_directions(self):
        result = run_fig12(TINY, workloads=(("vgg16", "cifar10"),))
        row = result.rows[0]
        assert row.activation.phi_compressed < row.activation.phi_uncompressed
        assert row.weight.phi_with_prefetch < row.weight.phi_without_prefetch
        without, with_prefetch = result.geomean_weight_ratios()
        assert with_prefetch < without

    def test_discussion_preprocessing_pays_off(self):
        result = run_discussion(TINY, workloads=(("vgg16", "cifar10"),))
        assert result.average_ratio() > 1.0
        assert "benefit_cost" in result.formatted()
