"""Batched cross-point execution and the shared-memory handoff path.

Property tests pin the tentpole's bit-exactness contract: the stacked
cross-point :func:`repro.runner.engine.simulate_many` path and the
vectorized L2 pack accounting must be *byte-identical* to the
per-point / per-tile reference paths they replace.  Functional tests
exercise the ``--jobs 4`` shared-memory handoff end to end — records
equal to a serial run, every segment unlinked at engine shutdown — and
the graceful-degradation contracts of :mod:`repro.runner.shm`.
"""

from __future__ import annotations

import json
import os
import pathlib

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.common import TINY
from repro.hw.config import ArchConfig
from repro.hw.l2_processor import L2Processor
from repro.hw.preprocessor import PackCounts
from repro.runner import (
    ArtifactStore,
    ResultCache,
    SweepEngine,
    SweepPoint,
    WorkloadSpec,
)
from repro.runner import engine as engine_module
from repro.runner.shm import SharedArtifacts, attach_and_prime, live_segments
from repro.runner.store import KIND_CALIBRATION, KIND_DECOMPOSITION


# --------------------------------------------------------------------- #
# Vectorized L2 pack accounting == scalar reference
# --------------------------------------------------------------------- #

pack_counts_lists = st.lists(
    st.builds(
        PackCounts,
        num_packs=st.integers(0, 400),
        weight_units=st.integers(0, 4000),
        psum_units=st.integers(0, 400),
        cycles=st.integers(0, 500),
        evictions=st.integers(0, 50),
    ),
    min_size=0,
    max_size=40,
)


@settings(max_examples=60, deadline=None)
@given(counts_list=pack_counts_lists)
def test_pack_cycles_for_matches_scalar_path(counts_list):
    """``pack_cycles_for`` element i == ``process_pack_counts(i).cycles``."""
    processor = L2Processor(ArchConfig())
    batched = processor.pack_cycles_for(counts_list)
    expected = [processor.process_pack_counts(c).cycles for c in counts_list]
    assert batched.dtype == np.int64
    assert batched.shape == (len(counts_list),)
    assert batched.tolist() == expected


# --------------------------------------------------------------------- #
# Stacked cross-point simulate_many == per-point simulate_point
# --------------------------------------------------------------------- #


def _record_bytes(record: dict) -> bytes:
    """The canonical byte serialisation the result cache writes."""
    return json.dumps(record, sort_keys=True).encode()


phi_grids = st.lists(
    st.tuples(
        st.sampled_from([2, 4, 8]),  # num_patterns (q)
        st.sampled_from([0, 1]),  # workload seed
    ),
    min_size=1,
    max_size=3,
)


@settings(max_examples=6, deadline=None)
@given(grid=phi_grids)
def test_stacked_simulate_many_is_byte_identical_to_per_point(grid):
    """Cross-point stacking never changes a single record byte.

    Points are drawn over a randomized (num_patterns, workload-seed)
    grid — duplicates are allowed and valuable, because same-unit points
    exercise the decomposition-sharing path while distinct units
    exercise the per-spec stacking groups.
    """
    points = [
        SweepPoint(
            workload=WorkloadSpec.random(0.3, m=64, k=32, n=8, seed=seed),
            arch=TINY.arch_config(num_patterns=q),
            phi=TINY.phi_config(num_patterns=q),
        )
        for q, seed in grid
    ]
    stacked = engine_module.simulate_many(points)
    reference = [engine_module.simulate_point(point) for point in points]
    assert [_record_bytes(r) for r in stacked] == [
        _record_bytes(r) for r in reference
    ]


# --------------------------------------------------------------------- #
# Shared-memory handoff (--jobs 4)
# --------------------------------------------------------------------- #


def shared_unit_points(num: int = 3) -> list[SweepPoint]:
    """Points of ONE (workload, PhiConfig) unit: same artifacts, varied arch."""
    spec = WorkloadSpec.random(0.3, m=64, k=32, n=8)
    phi = TINY.phi_config()
    return [
        SweepPoint(
            workload=spec,
            arch=TINY.arch_config(frequency_mhz=500.0 + 100.0 * i),
            phi=phi,
        )
        for i in range(num)
    ]


def _own_dev_shm_segments() -> list[str]:
    """Names of /dev/shm segments exported by THIS process's engines."""
    root = pathlib.Path("/dev/shm")
    if not root.exists():  # pragma: no cover - non-Linux fallback
        return []
    return sorted(p.name for p in root.glob(f"*phiart-{os.getpid()}-*"))


class TestSharedMemoryHandoff:
    def test_jobs4_matches_serial_and_leaks_no_segments(self, tmp_path):
        """Follower records ride shared memory yet match the serial run."""
        points = shared_unit_points(3)
        with SweepEngine(
            cache=ResultCache(tmp_path / "serial"),
            store=ArtifactStore(tmp_path / "serial-store"),
            jobs=1,
        ) as engine:
            serial = engine.run(points)

        with SweepEngine(
            cache=ResultCache(tmp_path / "parallel"),
            store=ArtifactStore(tmp_path / "parallel-store"),
            jobs=4,
        ) as engine:
            parallel = engine.run(points)
            # One unit with two followers: its calibration and its
            # decomposition set were exported exactly once each.
            assert len(engine._shared) == 2
        assert parallel == serial
        assert len(engine._shared) == 0, "close() must unlink every segment"
        assert _own_dev_shm_segments() == []

    def test_export_attach_roundtrip_primes_the_memo(self, tmp_path):
        """An attached segment serves the artifact without a disk read."""
        point = shared_unit_points(1)[0]
        store = ArtifactStore(tmp_path)
        with SweepEngine(store=store, jobs=1) as engine:
            engine.run([point])

        shared = SharedArtifacts()
        payload = engine_module._artifact_payload(point.workload, point.phi)
        manifest = []
        for kind in (KIND_CALIBRATION, KIND_DECOMPOSITION):
            entry = shared.export(store, kind, store.key(kind, payload))
            assert entry is not None
            manifest.append(entry)
        try:
            # A fresh, empty store directory: only the primed memo can
            # serve, so a successful get proves the shared pages did.
            fresh = ArtifactStore(tmp_path / "empty")
            assert attach_and_prime(fresh, manifest) == 2
            assert set(live_segments()) >= {entry[2] for entry in manifest}
            for kind, key, _name in manifest:
                assert fresh.get(kind, key) is not None
            assert fresh.hits == 2
            assert fresh.misses == 0
        finally:
            shared.close()
        assert len(shared) == 0

    def test_export_returns_same_entry_per_key(self, tmp_path):
        point = shared_unit_points(1)[0]
        store = ArtifactStore(tmp_path)
        with SweepEngine(store=store, jobs=1) as engine:
            engine.run([point])
        shared = SharedArtifacts()
        payload = engine_module._artifact_payload(point.workload, point.phi)
        key = store.key(KIND_CALIBRATION, payload)
        try:
            first = shared.export(store, KIND_CALIBRATION, key)
            second = shared.export(store, KIND_CALIBRATION, key)
            assert first is not None and first == second
            assert len(shared) == 1
        finally:
            shared.close()

    def test_attach_missing_segment_degrades_to_disk(self, tmp_path):
        """A dead segment name is skipped; the store still serves it."""
        store = ArtifactStore(tmp_path)
        manifest = [(KIND_CALIBRATION, "00" * 32, "phiart-gone-segment")]
        assert attach_and_prime(store, manifest) == 0
        assert attach_and_prime(None, manifest) == 0
        assert attach_and_prime(store, []) == 0

    def test_export_unknown_key_returns_none(self, tmp_path):
        shared = SharedArtifacts()
        try:
            assert shared.export(ArtifactStore(tmp_path), KIND_CALIBRATION, "ff" * 32) is None
        finally:
            shared.close()
