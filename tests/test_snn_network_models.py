"""Tests for the network container, attention blocks and the model zoo."""

import numpy as np
import pytest

from repro.snn.attention import SpikingSelfAttention, SpikingTransformerBlock
from repro.snn.encoding import direct_encode, event_stream_encode, latency_encode, rate_encode
from repro.snn.layers import LIFLayer, Linear
from repro.snn.models import (
    PAPER_WORKLOADS,
    available_models,
    build_model,
    build_spikformer,
    build_spiking_resnet,
    build_spiking_vgg,
)
from repro.snn.network import SpikingNetwork


class TestEncoding:
    def test_rate_encode_binary_and_rate(self, rng):
        data = np.full((4, 4), 0.5)
        spikes = rate_encode(data, 200, rng=rng)
        assert set(np.unique(spikes)) <= {0.0, 1.0}
        assert spikes.mean() == pytest.approx(0.5, abs=0.05)

    def test_rate_encode_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            rate_encode(np.array([1.5]), 4)

    def test_latency_encode_single_spike(self):
        spikes = latency_encode(np.array([0.9, 0.1, 0.0]), 8)
        assert spikes.sum(axis=0)[0] == 1
        assert spikes.sum(axis=0)[2] == 0
        # Brighter values fire earlier.
        assert np.argmax(spikes[:, 0]) <= np.argmax(spikes[:, 1])

    def test_direct_encode_repeats(self):
        data = np.array([1.0, 2.0])
        spikes = direct_encode(data, 3)
        assert spikes.shape == (3, 2)
        assert np.all(spikes == data)

    def test_event_stream_rebinning(self):
        events = np.zeros((8, 2, 2))
        events[0, 0, 0] = 1
        events[7, 1, 1] = 1
        binned = event_stream_encode(events, 2)
        assert binned.shape == (2, 2, 2)
        assert binned[0, 0, 0] == 1
        assert binned[1, 1, 1] == 1


class TestSpikingNetwork:
    @pytest.fixture
    def tiny_network(self, rng):
        layers = [
            Linear(12, 16, name="fc0", rng=rng),
            LIFLayer(name="lif0"),
            Linear(16, 4, name="fc1", rng=rng),
        ]
        return SpikingNetwork(layers, num_steps=3, name="tiny")

    def test_forward_shape(self, tiny_network, rng):
        logits = tiny_network.forward(rng.random((5, 12)))
        assert logits.shape == (5, 4)

    def test_predict_and_accuracy(self, tiny_network, rng):
        data = rng.random((6, 12))
        labels = np.zeros(6, dtype=int)
        accuracy = tiny_network.accuracy(data, labels)
        assert 0.0 <= accuracy <= 1.0

    def test_recording_captures_binary_inputs(self, tiny_network, rng):
        _, records = tiny_network.record_activations(rng.random((4, 12)))
        assert set(records) == {"fc0", "fc1"}
        # fc1 is fed by a LIF layer, so its recorded inputs are binary.
        assert records["fc1"].is_binary
        assert records["fc1"].stacked().shape == (4 * 3, 16)
        assert records["fc1"].output_width == 4

    def test_record_bit_density(self, tiny_network, rng):
        _, records = tiny_network.record_activations(rng.random((4, 12)))
        assert 0.0 <= records["fc1"].bit_density <= 1.0

    def test_firing_rates(self, tiny_network, rng):
        tiny_network.forward(rng.random((4, 12)))
        rates = tiny_network.firing_rates()
        assert "lif0" in rates
        assert 0.0 <= rates["lif0"] <= 1.0

    def test_pre_encoded_input(self, tiny_network, rng):
        train = rng.random((3, 4, 12))
        logits = tiny_network.forward(train, pre_encoded=True)
        assert logits.shape == (4, 4)

    def test_pre_encoded_wrong_steps(self, tiny_network, rng):
        with pytest.raises(ValueError):
            tiny_network.forward(rng.random((5, 4, 12)), pre_encoded=True)

    def test_requires_layers(self):
        with pytest.raises(ValueError):
            SpikingNetwork([], num_steps=2)

    def test_num_parameters(self, tiny_network):
        assert tiny_network.num_parameters() == 12 * 16 + 16 + 16 * 4 + 4


class TestAttention:
    def test_ssa_forward_shape(self, rng):
        attention = SpikingSelfAttention(16, num_heads=2, rng=rng)
        out = attention.forward((rng.random((2, 5, 16)) < 0.3).astype(float))
        assert out.shape == (2, 5, 16)
        assert set(np.unique(out)) <= {0.0, 1.0}

    def test_ssa_backward_shape(self, rng):
        attention = SpikingSelfAttention(16, num_heads=2, rng=rng)
        x = (rng.random((2, 5, 16)) < 0.3).astype(float)
        out = attention.forward(x)
        grad = attention.backward(np.ones_like(out))
        assert grad.shape == x.shape

    def test_ssa_rejects_bad_heads(self):
        with pytest.raises(ValueError):
            SpikingSelfAttention(10, num_heads=3)

    def test_transformer_block(self, rng):
        block = SpikingTransformerBlock(16, num_heads=2, rng=rng)
        x = (rng.random((2, 4, 16)) < 0.3).astype(float)
        out = block.forward(x)
        assert out.shape == x.shape
        assert len(block.matmul_layers()) == 6  # q, k, v, out, fc1, fc2
        grad = block.backward(np.ones_like(out))
        assert grad.shape == x.shape


class TestModelZoo:
    def test_available_models(self):
        assert set(available_models()) == {
            "vgg16",
            "resnet18",
            "spikformer",
            "sdt",
            "spikebert",
            "spikingbert",
            "spikingrnn",
        }

    def test_unknown_model(self):
        with pytest.raises(ValueError):
            build_model("alexnet")

    def test_paper_workloads_cover_all_models(self):
        # Every paper workload has a zoo model; the zoo additionally holds
        # the temporal-extension model, which the paper does not evaluate.
        paper_models = {spec.model_name for spec in PAPER_WORKLOADS}
        assert paper_models <= set(available_models())
        assert set(available_models()) - paper_models == {"spikingrnn"}

    def test_vgg_forward(self, rng):
        network = build_spiking_vgg(num_classes=5, image_size=8, channels=(4, 8))
        logits = network.forward(rng.random((2, 3, 8, 8)))
        assert logits.shape == (2, 5)

    def test_resnet_forward(self, rng):
        network = build_spiking_resnet(
            num_classes=4, image_size=8, channels=(4, 8), blocks_per_stage=1
        )
        logits = network.forward(rng.random((2, 3, 8, 8)))
        assert logits.shape == (2, 4)

    def test_spikformer_forward(self, rng):
        network = build_spikformer(num_classes=3, image_size=8, embed_dim=16, depth=1, patch_size=4)
        logits = network.forward(rng.random((2, 3, 8, 8)))
        assert logits.shape == (2, 3)

    def test_text_model_forward(self, rng):
        network = build_model("spikebert", num_classes=2, vocab_size=50, seq_len=6,
                              embed_dim=16, depth=1)
        tokens = rng.integers(0, 50, size=(3, 6))
        logits = network.forward(tokens)
        assert logits.shape == (3, 2)

    def test_vgg_threshold_controls_density(self, rng):
        data = rng.random((2, 3, 8, 8))
        low = build_spiking_vgg(image_size=8, channels=(4,), threshold=0.5, seed=0)
        high = build_spiking_vgg(image_size=8, channels=(4,), threshold=2.5, seed=0)
        low.forward(data)
        high.forward(data)
        low_rate = np.mean(list(low.firing_rates().values()))
        high_rate = np.mean(list(high.firing_rates().values()))
        assert high_rate <= low_rate
