"""Docstring enforcement for the public API (runner, report, registry).

A lightweight, dependency-free stand-in for ``pydocstyle``/``ruff``'s D
rules (CI additionally runs ``ruff check --select D`` — see ruff.toml):
every public module, class, function and method in the packages below
must carry a docstring, and every experiment result dataclass must
document itself.  Private names (leading underscore) and dunders are
exempt.
"""

from __future__ import annotations

import ast
import pathlib

import pytest

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"

#: Files whose entire public surface must be documented.
CHECKED_FILES = sorted(
    list((SRC / "runner").glob("*.py"))
    + list((SRC / "report").glob("*.py"))
    + list((SRC / "service").glob("*.py"))
    + [SRC / "experiments" / "registry.py", SRC / "experiments" / "common.py"]
)

#: Experiment harness files: their public *classes* (the FigN/TableN
#: result dataclasses) must be documented.
HARNESS_FILES = sorted((SRC / "experiments").glob("*.py"))


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _missing_docstrings(path: pathlib.Path, *, functions: bool) -> list[str]:
    tree = ast.parse(path.read_text())
    missing = []
    if ast.get_docstring(tree) is None:
        missing.append(f"{path.name}: module")

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef) and _is_public(child.name):
                if ast.get_docstring(child) is None:
                    missing.append(f"{path.name}: class {prefix}{child.name}")
                visit(child, f"{prefix}{child.name}.")
            elif (
                functions
                and isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                and _is_public(child.name)
            ):
                if ast.get_docstring(child) is None:
                    missing.append(f"{path.name}: def {prefix}{child.name}")

    visit(tree, "")
    return missing


@pytest.mark.parametrize("path", CHECKED_FILES, ids=lambda p: str(p.relative_to(SRC)))
def test_public_api_is_documented(path):
    assert _missing_docstrings(path, functions=True) == []


@pytest.mark.parametrize("path", HARNESS_FILES, ids=lambda p: str(p.relative_to(SRC)))
def test_result_dataclasses_are_documented(path):
    assert _missing_docstrings(path, functions=False) == []
