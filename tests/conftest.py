"""Shared fixtures for the test suite.

Expensive artefacts (recorded workloads, calibrations) are module-scoped
or session-scoped so the several hundred tests stay fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PhiCalibrator, PhiConfig
from repro.workloads import generate_workload


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    """Deterministic random generator shared by tests."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def small_phi_config() -> PhiConfig:
    """A small Phi configuration used across unit tests."""
    return PhiConfig(partition_size=8, num_patterns=16, calibration_samples=2000)


@pytest.fixture(scope="session")
def binary_matrix(rng) -> np.ndarray:
    """A structured binary matrix (clustered rows plus noise)."""
    prototypes = (rng.random((6, 32)) < 0.25).astype(np.uint8)
    rows = []
    for _ in range(300):
        proto = prototypes[rng.integers(0, len(prototypes))]
        noise = (rng.random(32) < 0.05).astype(np.uint8)
        rows.append(np.bitwise_xor(proto, noise))
    return np.array(rows, dtype=np.uint8)


@pytest.fixture(scope="session")
def vgg_workload():
    """A tiny VGG16 workload recorded once per test session."""
    return generate_workload("vgg16", "cifar10", batch_size=2, num_steps=2)


@pytest.fixture(scope="session")
def spikformer_workload():
    """A tiny Spikformer workload recorded once per test session."""
    return generate_workload("spikformer", "cifar100", batch_size=2, num_steps=2)


@pytest.fixture(scope="session")
def vgg_calibration(vgg_workload, small_phi_config):
    """Calibrated patterns for the tiny VGG workload."""
    calibrator = PhiCalibrator(small_phi_config)
    return calibrator.calibrate_model(vgg_workload.activation_matrices())
