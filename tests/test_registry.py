"""Consistency tests for the experiment registry.

The registry is the single source of truth the report pipeline and the
runner CLI enumerate; these tests pin the invariants the rest of the
tooling relies on: every harness module is registered, names are unique,
entry points resolve, and no harness bypasses the sweep engine to
construct simulators directly.
"""

from __future__ import annotations

import pathlib
import re

import pytest

from repro.experiments import (
    REGISTRY,
    SCALES,
    TINY,
    ExperimentSpec,
    experiment_names,
    get_experiment,
    resolve_scale,
)
from repro.report import PAYLOAD_BUILDERS

EXPERIMENTS_DIR = (
    pathlib.Path(__file__).resolve().parent.parent / "src" / "repro" / "experiments"
)

#: Harness modules that must have a registry entry.
HARNESS_MODULES = sorted(
    path.stem
    for path in EXPERIMENTS_DIR.glob("*.py")
    if re.fullmatch(r"fig\d+|table\d+|discussion|temporal", path.stem)
)


class TestRegistryCompleteness:
    def test_every_harness_module_is_registered(self):
        assert sorted(experiment_names()) == HARNESS_MODULES

    def test_names_are_unique(self):
        names = experiment_names()
        assert len(names) == len(set(names))

    def test_every_experiment_has_an_emitter(self):
        assert sorted(PAYLOAD_BUILDERS) == sorted(experiment_names())

    def test_specs_are_fully_described(self):
        for spec in REGISTRY:
            assert spec.claim.strip(), spec.name
            assert spec.paper_ref.strip(), spec.name
            assert spec.section.strip(), spec.name
            assert spec.kind in ("figure", "table", "analysis")

    def test_entry_points_resolve(self):
        for spec in REGISTRY:
            assert callable(spec.runner()), spec.name

    def test_presets_reference_known_tiers(self):
        for spec in REGISTRY:
            assert set(spec.presets) <= set(SCALES), spec.name


class TestRegistryLookup:
    def test_get_experiment(self):
        assert get_experiment("fig7").paper_ref == "Fig. 7"

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(KeyError, match="fig7"):
            get_experiment("fig99")

    def test_resolve_scale_by_name_and_object(self):
        assert resolve_scale("tiny") == ("tiny", TINY)
        assert resolve_scale(TINY) == ("tiny", TINY)
        name, _ = resolve_scale(TINY.__class__(batch_size=3))
        assert name == "custom"

    def test_resolve_scale_rejects_unknown_name(self):
        with pytest.raises(ValueError, match="unknown scale"):
            resolve_scale("huge")

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown experiment kind"):
            ExperimentSpec(
                name="x",
                kind="plot",
                paper_ref="Fig. X",
                section="S",
                claim="c",
                module="m",
                entry_point="f",
            )


class TestNoSimulatorOutsideEngine:
    """Acceptance criterion: no harness builds simulator sweeps itself."""

    FORBIDDEN = ("PhiSimulator", "get_baseline", "PhiAccelerator", ".simulate(")

    def test_harness_modules_do_not_construct_simulators(self):
        offenders = []
        for name in HARNESS_MODULES + ["common"]:
            source = (EXPERIMENTS_DIR / f"{name}.py").read_text()
            for token in self.FORBIDDEN:
                if token in source:
                    offenders.append(f"{name}: {token}")
        assert not offenders, (
            "experiment harnesses must route simulations through "
            f"repro.runner.SweepEngine; found {offenders}"
        )
