"""Tests for the SGD trainer and PAFT fine-tuning loop."""

import numpy as np
import pytest

from repro.core.calibration import PhiCalibrator
from repro.core.config import PhiConfig
from repro.core.paft import PAFTConfig
from repro.snn.layers import LIFLayer, Linear
from repro.snn.network import SpikingNetwork
from repro.snn.training import SGDTrainer, cross_entropy, iterate_minibatches, softmax


@pytest.fixture
def toy_task(rng):
    """A linearly separable 2-class task with 16 features."""
    num = 64
    labels = rng.integers(0, 2, size=num)
    centers = np.array([[0.2] * 16, [0.8] * 16])
    data = centers[labels] + 0.1 * rng.standard_normal((num, 16))
    return np.clip(data, 0, 1), labels


@pytest.fixture
def tiny_network(rng):
    return SpikingNetwork(
        [
            Linear(16, 24, name="fc0", rng=rng),
            LIFLayer(name="lif0"),
            Linear(24, 2, name="fc1", rng=rng),
        ],
        num_steps=3,
        name="tiny",
    )


class TestLossFunctions:
    def test_softmax_sums_to_one(self, rng):
        probs = softmax(rng.standard_normal((5, 7)))
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_softmax_stability(self):
        probs = softmax(np.array([[1000.0, 1000.0]]))
        assert np.allclose(probs, 0.5)

    def test_cross_entropy_perfect_prediction(self):
        logits = np.array([[10.0, -10.0]])
        loss, grad = cross_entropy(logits, np.array([0]))
        assert loss < 1e-3
        assert grad.shape == (1, 2)

    def test_cross_entropy_gradient_direction(self):
        logits = np.array([[0.0, 0.0]])
        _, grad = cross_entropy(logits, np.array([1]))
        assert grad[0, 1] < 0 < grad[0, 0]

    def test_minibatch_iteration_covers_data(self, rng):
        data = np.arange(10)[:, None]
        labels = np.arange(10)
        seen = []
        for batch, _ in iterate_minibatches(data, labels, 3, rng=rng):
            seen.extend(batch[:, 0].tolist())
        assert sorted(seen) == list(range(10))

    def test_minibatch_length_mismatch(self):
        with pytest.raises(ValueError):
            list(iterate_minibatches(np.zeros((3, 1)), np.zeros(2), 2))


class TestSGDTrainer:
    def test_training_reduces_loss(self, tiny_network, toy_task):
        data, labels = toy_task
        trainer = SGDTrainer(tiny_network, learning_rate=0.1)
        history = trainer.fit(data, labels, epochs=4, batch_size=16,
                              eval_data=data, eval_labels=labels)
        assert history.losses[-1] < history.losses[0]
        assert history.final_accuracy >= 0.5

    def test_training_beats_chance(self, tiny_network, toy_task):
        data, labels = toy_task
        trainer = SGDTrainer(tiny_network, learning_rate=0.1)
        trainer.fit(data, labels, epochs=5, batch_size=16)
        accuracy = trainer.evaluate(data, labels)
        assert accuracy > 0.6

    def test_invalid_hyperparameters(self, tiny_network):
        with pytest.raises(ValueError):
            SGDTrainer(tiny_network, learning_rate=0.0)
        with pytest.raises(ValueError):
            SGDTrainer(tiny_network, momentum=1.0)

    def test_paft_reduces_regularizer(self, tiny_network, toy_task):
        data, labels = toy_task
        trainer = SGDTrainer(tiny_network, learning_rate=0.05)
        trainer.fit(data, labels, epochs=2, batch_size=16)

        # Calibrate patterns from recorded activations of the trained net.
        _, records = tiny_network.record_activations(data[:16])
        calibrator = PhiCalibrator(PhiConfig(partition_size=8, num_patterns=8,
                                             calibration_samples=1000))
        layer_activations = {
            name: rec.stacked().astype(np.uint8)
            for name, rec in records.items()
            if rec.is_binary and rec.matrices
        }
        calibration = calibrator.calibrate_model(layer_activations)
        assert calibration.layer_names()  # at least one binary GEMM

        trainer.enable_paft(calibration, PAFTConfig(lam=1e-3, learning_rate=1e-2, epochs=2))
        assert trainer.paft_enabled
        history = trainer.fit(data, labels, epochs=2, batch_size=16)
        # The PAFT regulariser is tracked and non-negative.
        assert all(r >= 0 for r in history.regularizers)
        trainer.disable_paft()
        assert not trainer.paft_enabled

    def test_evaluate_on_empty_returns_zero(self, tiny_network):
        trainer = SGDTrainer(tiny_network)
        assert trainer.evaluate(np.zeros((0, 16)), np.zeros(0, dtype=int)) == 0.0
