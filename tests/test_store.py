"""Tests for the shared artifact store and the store-aware sweep engine.

Covers the npz round-trips (bit-exactness of loaded artifacts), atomic
concurrent writes, the engine's compute-once guarantee across store
instances, and the parallel determinism acceptance criterion (`--jobs 1`
and `--jobs 4` produce byte-identical v3 records).
"""

from __future__ import annotations

import json
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

import repro.runner.engine as engine_module
from repro.core.calibration import PhiCalibrator
from repro.core.config import PhiConfig
from repro.core.sparsity import decompose_matrix, rebuild_decomposition
from repro.experiments.common import TINY
from repro.runner import (
    ArtifactStore,
    ResultCache,
    SweepEngine,
    SweepPoint,
    WorkloadSpec,
    calibration_for,
)
from repro.runner.store import (
    KIND_CALIBRATION,
    KIND_DECOMPOSITION,
    KIND_WORKLOAD,
    DecompositionArtifact,
)
from repro.workloads.generator import cached_workload, generate_random_workload


def tiny_workload(seed: int = 0):
    """A small deterministic random workload for store tests."""
    return generate_random_workload(density=0.3, m=64, k=32, n=8, seed=seed)


def tiny_config() -> PhiConfig:
    """A cheap PhiConfig for store tests."""
    return PhiConfig(partition_size=8, num_patterns=4, calibration_samples=64)


def tiny_points(num: int = 3) -> list[SweepPoint]:
    """Random-workload sweep points across distinct pattern counts."""
    spec = WorkloadSpec.random(0.3, m=64, k=32, n=8)
    return [
        SweepPoint(
            workload=spec,
            arch=TINY.arch_config(num_patterns=2**q),
            phi=TINY.phi_config(num_patterns=2**q),
        )
        for q in range(2, 2 + num)
    ]


class TestArtifactRoundtrips:
    def test_workload_roundtrip_is_bit_exact(self, tmp_path):
        store = ArtifactStore(tmp_path)
        workload = tiny_workload()
        key = store.key(KIND_WORKLOAD, {"seed": 0})
        store.put(KIND_WORKLOAD, key, workload)

        loaded = ArtifactStore(tmp_path).get(KIND_WORKLOAD, key)  # fresh memo
        assert loaded is not None
        assert loaded.model_name == workload.model_name
        assert loaded.layer_names() == workload.layer_names()
        for original, restored in zip(workload, loaded):
            np.testing.assert_array_equal(original.activations, restored.activations)
            np.testing.assert_array_equal(original.weights, restored.weights)
            assert restored.activations.dtype == original.activations.dtype

    def test_calibration_roundtrip_is_bit_exact(self, tmp_path):
        store = ArtifactStore(tmp_path)
        workload, config = tiny_workload(), tiny_config()
        calibration = PhiCalibrator(config).calibrate_model(
            workload.activation_matrices()
        )
        key = store.key(KIND_CALIBRATION, {"cfg": config.to_dict()})
        store.put(KIND_CALIBRATION, key, calibration)

        loaded = ArtifactStore(tmp_path).get(KIND_CALIBRATION, key)
        assert loaded is not None
        assert loaded.config == config
        assert loaded.layer_names() == calibration.layer_names()
        for name in calibration.layer_names():
            original, restored = calibration[name], loaded[name]
            assert restored.partition_size == original.partition_size
            assert restored.total_width == original.total_width
            for a, b in zip(original.pattern_sets, restored.pattern_sets):
                np.testing.assert_array_equal(a.matrix, b.matrix)

    def test_decomposition_roundtrip_rebuilds_bit_exact(self, tmp_path):
        store = ArtifactStore(tmp_path)
        workload, config = tiny_workload(), tiny_config()
        calibration = PhiCalibrator(config).calibrate_model(
            workload.activation_matrices()
        )
        decompositions = {
            layer.name: calibration[layer.name].decompose(layer.activations)
            for layer in workload
        }
        key = store.key(KIND_DECOMPOSITION, {"cfg": config.to_dict()})
        store.put(KIND_DECOMPOSITION, key, decompositions)

        loaded = ArtifactStore(tmp_path).get(KIND_DECOMPOSITION, key)
        assert isinstance(loaded, DecompositionArtifact)
        rebuilt = loaded.rebuild(workload, calibration)
        for name, original in decompositions.items():
            restored = rebuilt[name]
            assert restored.boundaries == original.boundaries
            for a, b in zip(original.tiles, restored.tiles):
                np.testing.assert_array_equal(a.pattern_indices, b.pattern_indices)
                np.testing.assert_array_equal(a.level2, b.level2)
                np.testing.assert_array_equal(a.original, b.original)

    def test_rebuild_decomposition_matches_decompose_matrix(self):
        workload, config = tiny_workload(seed=3), tiny_config()
        layer = workload[0]
        calibration = PhiCalibrator(config).calibrate_layer(
            layer.name, layer.activations
        )
        direct = decompose_matrix(
            layer.activations, calibration.pattern_sets, config.partition_size
        )
        rebuilt = rebuild_decomposition(
            layer.activations,
            calibration.pattern_sets,
            config.partition_size,
            direct.pattern_index_matrix(),
        )
        np.testing.assert_array_equal(rebuilt.reconstruct(), direct.reconstruct())
        for a, b in zip(direct.tiles, rebuilt.tiles):
            np.testing.assert_array_equal(a.level2, b.level2)

    def test_corrupt_artifact_counts_as_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = store.key(KIND_WORKLOAD, {"seed": 1})
        store.put(KIND_WORKLOAD, key, tiny_workload(seed=1))
        store.path_for(key).write_bytes(b"not an npz")
        assert ArtifactStore(tmp_path).get(KIND_WORKLOAD, key) is None

    def test_unknown_kind_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown artifact kind"):
            ArtifactStore(tmp_path).key("nonsense", {})

    def test_len_and_clear(self, tmp_path):
        store = ArtifactStore(tmp_path)
        for seed in range(3):
            key = store.key(KIND_WORKLOAD, {"seed": seed})
            store.put(KIND_WORKLOAD, key, tiny_workload(seed=seed))
        assert len(store) == 3
        assert store.clear() == 3
        assert len(store) == 0


class TestConcurrentWrites:
    def test_concurrent_puts_never_corrupt_or_duplicate(self, tmp_path):
        """Many writers, one shared key plus distinct keys, no corruption."""
        store = ArtifactStore(tmp_path)
        workload = tiny_workload()
        shared_key = store.key(KIND_WORKLOAD, {"shared": True})

        def write(i: int) -> None:
            # Fresh store instances so nothing is served from a memo.
            own = ArtifactStore(tmp_path)
            own.put(KIND_WORKLOAD, shared_key, workload)
            unique = own.key(KIND_WORKLOAD, {"writer": i})
            own.put(KIND_WORKLOAD, unique, workload)

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(write, range(16)))

        # 1 shared + 16 unique entries, no temp-file litter, all readable.
        assert len(ArtifactStore(tmp_path)) == 17
        assert not list(tmp_path.rglob("*.tmp"))
        fresh = ArtifactStore(tmp_path)
        loaded = fresh.get(KIND_WORKLOAD, shared_key)
        np.testing.assert_array_equal(
            loaded[0].activations, workload[0].activations
        )

    def test_concurrent_cache_puts_are_atomic(self, tmp_path):
        """The result cache tolerates racing writers on the same key."""
        cache = ResultCache(tmp_path)
        record = {"schema": 3, "value": list(range(100))}

        def write(i: int) -> None:
            ResultCache(tmp_path).put("ab" + "0" * 62, record)

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(write, range(32)))
        assert len(cache) == 1
        assert cache.get("ab" + "0" * 62) == record
        assert not list(tmp_path.rglob("*.tmp"))


def _clear_process_memos() -> None:
    """Drop every in-process memo so only the on-disk store can serve."""
    cached_workload.cache_clear()
    engine_module._CALIBRATION_MEMO.clear()
    engine_module._random_workload.cache_clear()


class TestStoreBackedEngine:
    @pytest.fixture()
    def counted_kmeans(self, monkeypatch):
        """Count PhiCalibrator.calibrate_model invocations."""
        calls = {"n": 0}
        original = PhiCalibrator.calibrate_model

        def counting(self, layer_activations):
            calls["n"] += 1
            return original(self, layer_activations)

        monkeypatch.setattr(PhiCalibrator, "calibrate_model", counting)
        return calls

    def test_calibration_computed_once_ever(self, tmp_path, counted_kmeans):
        point = tiny_points(1)[0]
        _clear_process_memos()
        engine = SweepEngine(store=ArtifactStore(tmp_path))
        first = engine.run([point])[0]
        assert counted_kmeans["n"] == 1

        # New store instance, cleared memos: everything must come off disk.
        _clear_process_memos()
        engine = SweepEngine(store=ArtifactStore(tmp_path))
        second = engine.run([point])[0]
        assert counted_kmeans["n"] == 1
        assert first == second

    def test_store_and_storeless_records_agree(self, tmp_path):
        point = tiny_points(1)[0]
        _clear_process_memos()
        with_store = SweepEngine(store=ArtifactStore(tmp_path)).run([point])[0]
        _clear_process_memos()
        without_store = SweepEngine().run([point])[0]
        assert with_store == without_store

    def test_paft_point_uses_store(self, tmp_path, counted_kmeans):
        spec = WorkloadSpec(
            "vgg16", "cifar10", batch_size=2, num_steps=2, paft_strength=0.5
        )
        point = SweepPoint(
            workload=spec, arch=TINY.arch_config(), phi=TINY.phi_config()
        )
        _clear_process_memos()
        first = SweepEngine(store=ArtifactStore(tmp_path)).run([point])[0]
        # Base calibration (alignment target) + aligned-workload calibration.
        assert counted_kmeans["n"] == 2

        _clear_process_memos()
        second = SweepEngine(store=ArtifactStore(tmp_path)).run([point])[0]
        assert counted_kmeans["n"] == 2
        assert first == second

    def test_calibration_for_does_not_mutate_workloads(self):
        workload = tiny_workload(seed=7)
        calibration_for(workload, tiny_config())
        assert not hasattr(workload, "_phi_calibration_cache")
        assert "_phi_calibration_cache" not in vars(workload)


class TestParallelDeterminism:
    def test_jobs1_and_jobs4_records_byte_identical(self, tmp_path):
        """Acceptance criterion: parallel runs cache byte-identical records."""
        points = tiny_points(3)

        serial_cache = tmp_path / "serial"
        with SweepEngine(
            cache=ResultCache(serial_cache),
            store=ArtifactStore(tmp_path / "serial-store"),
            jobs=1,
        ) as engine:
            serial_records = engine.run(points)

        parallel_cache = tmp_path / "parallel"
        with SweepEngine(
            cache=ResultCache(parallel_cache),
            store=ArtifactStore(tmp_path / "parallel-store"),
            jobs=4,
        ) as engine:
            parallel_records = engine.run(points)

        assert serial_records == parallel_records
        serial_files = {p.name: p for p in serial_cache.glob("*/*.json")}
        parallel_files = {p.name: p for p in parallel_cache.glob("*/*.json")}
        assert sorted(serial_files) == sorted(parallel_files)
        for name, path in serial_files.items():
            assert path.read_bytes() == parallel_files[name].read_bytes(), name

    def test_warm_pool_survives_across_runs(self, tmp_path):
        points = tiny_points(2)
        with SweepEngine(
            store=ArtifactStore(tmp_path), cache=ResultCache(tmp_path / "c"), jobs=2
        ) as engine:
            first = engine.run(points)
            pool = engine._pool
            assert pool is not None
            second = engine.run(tiny_points(3))
            assert engine._pool is pool  # same warm pool, not respawned
        assert engine._pool is None  # closed on exit
        assert [r["total_cycles"] for r in first] == [
            r["total_cycles"] for r in second[:2]
        ]


class TestBenchTrajectory:
    def test_append_and_check(self, tmp_path):
        from repro.bench import BenchResult, append_results, check_against_baseline

        result = BenchResult(
            schema=1,
            timestamp="2026-07-30T00:00:00+00:00",
            experiment="fig7",
            scale="tiny",
            scenario="serial_cold",
            jobs=1,
            wall_seconds=1.0,
            sweep_seconds=0.8,
            points=16,
            cache_hits=1,
            executed=15,
            code_version="1.0.0",
            python="3.11",
            cpu_count=1,
        )
        output = tmp_path / "BENCH_sweep.json"
        append_results([result], output)
        append_results([result], output)
        entries = json.loads(output.read_text())
        assert len(entries) == 2
        assert entries[0]["scenario"] == "serial_cold"

        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"fig7/tiny/serial_cold": 1.0}))
        assert check_against_baseline([result], baseline) == []
        slow = BenchResult(**{**entries[0], "wall_seconds": 2.5})
        failures = check_against_baseline([slow], baseline)
        assert len(failures) == 1 and "serial_cold" in failures[0]


class TestStoreFailurePaths:
    """PR-4 failure semantics made explicit: the store is an accelerator,
    never a correctness dependency — corruption, clears and unwritable
    directories all degrade to recompute, never to a crash."""

    def test_corrupt_artifact_is_a_miss_under_a_concurrent_writer(self, tmp_path):
        store = ArtifactStore(tmp_path)
        workload = tiny_workload()
        key = store.key(KIND_WORKLOAD, {"corrupt-race": True})
        path = store.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"definitely not an npz")

        outcomes: list[str] = []

        def read(i: int) -> None:
            loaded = ArtifactStore(tmp_path).get(KIND_WORKLOAD, key)
            if loaded is None:
                outcomes.append("miss")
            else:
                np.testing.assert_array_equal(
                    loaded[0].activations, workload[0].activations
                )
                outcomes.append("hit")

        def write(i: int) -> None:
            ArtifactStore(tmp_path).put(KIND_WORKLOAD, key, workload)
            outcomes.append("write")

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(lambda i: write(i) if i % 4 == 0 else read(i), range(24)))

        # Every read was a clean miss or a bit-exact hit — never an
        # exception, never torn bytes — and the writer eventually heals
        # the entry.
        assert set(outcomes) <= {"miss", "hit", "write"}
        healed = ArtifactStore(tmp_path).get(KIND_WORKLOAD, key)
        np.testing.assert_array_equal(
            healed[0].activations, workload[0].activations
        )

    def test_store_clear_under_a_live_engine_recomputes_and_repopulates(
        self, tmp_path
    ):
        """`python -m repro.runner store --clear` while a service holds the
        store open: in-flight engines keep working and later runs
        repopulate the directory."""
        import subprocess
        import sys

        store = ArtifactStore(tmp_path / "store")
        points = tiny_points(2)
        engine = SweepEngine(cache=ResultCache(tmp_path / "cache-a"), store=store)
        first = engine.run(points)
        assert len(store) > 0

        completed = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.runner",
                "store",
                "--clear",
                "--store-dir",
                str(store.root),
            ],
            capture_output=True,
            text=True,
        )
        assert completed.returncode == 0
        assert len(ArtifactStore(store.root)) == 0

        # The same (still-open) engine serves a fresh cache dir without
        # error: its in-process memo still holds the artifacts, so the
        # clear never disturbs in-flight work.
        engine.cache = ResultCache(tmp_path / "cache-b")
        second = engine.run(points)
        assert json.loads(json.dumps(second)) == json.loads(json.dumps(first))

        # A *fresh* engine (new store instance, empty memo) recomputes
        # and repopulates the cleared directory with identical results.
        fresh = SweepEngine(
            cache=ResultCache(tmp_path / "cache-c"), store=ArtifactStore(store.root)
        )
        third = fresh.run(points)
        assert json.loads(json.dumps(third)) == json.loads(json.dumps(first))
        assert len(ArtifactStore(store.root)) > 0

    def test_unwritable_store_degrades_to_compute_without_persist(self, tmp_path):
        # The store root's parent is a regular *file*, so every mkdir /
        # write fails with OSError regardless of uid (chmod-based
        # read-only checks are vacuous when the suite runs as root).
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        store = ArtifactStore(blocker / "store")
        engine = SweepEngine(cache=ResultCache(tmp_path / "cache"), store=store)

        with pytest.warns(RuntimeWarning, match="not writable"):
            records = engine.run(tiny_points(2))

        assert all(r["schema"] == 3 for r in records)
        assert len(store) == 0, "nothing can persist below a file"
        # The records match a store-less engine bit for bit.
        bare = SweepEngine().run(tiny_points(2))
        assert json.loads(json.dumps(records)) == json.loads(json.dumps(bare))

    def test_put_failure_still_memoises_for_this_process(self, tmp_path, monkeypatch):
        store = ArtifactStore(tmp_path)
        workload = tiny_workload()
        key = store.key(KIND_WORKLOAD, {"memo-only": True})
        monkeypatch.setattr(
            "repro.runner.store.os.replace",
            lambda *args: (_ for _ in ()).throw(PermissionError("read-only")),
        )
        with pytest.warns(RuntimeWarning, match="not writable"):
            store.put(KIND_WORKLOAD, key, workload)
        # Same instance: served from the memo.  Fresh instance: a miss.
        assert store.get(KIND_WORKLOAD, key) is workload
        assert ArtifactStore(tmp_path).get(KIND_WORKLOAD, key) is None
        assert not list(tmp_path.rglob("*.tmp")), "failed put must clean up"
