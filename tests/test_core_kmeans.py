"""Unit tests for the binary k-means clustering (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.config import KMeansConfig
from repro.core.kmeans import (
    binary_kmeans,
    cluster_partition,
    filter_calibration_rows,
    hamming_distance_matrix,
    unique_binary_rows,
)


class TestHammingDistanceMatrix:
    def test_basic(self):
        rows = np.array([[1, 0, 1], [0, 0, 0]], dtype=np.uint8)
        centers = np.array([[1, 0, 1], [1, 1, 1]], dtype=np.uint8)
        distances = hamming_distance_matrix(rows, centers)
        assert distances.shape == (2, 2)
        assert distances[0, 0] == 0
        assert distances[0, 1] == 1
        assert distances[1, 0] == 2
        assert distances[1, 1] == 3

    def test_matches_bruteforce(self, rng):
        rows = (rng.random((40, 12)) < 0.3).astype(np.uint8)
        centers = (rng.random((7, 12)) < 0.3).astype(np.uint8)
        fast = hamming_distance_matrix(rows, centers)
        brute = (rows[:, None, :] != centers[None, :, :]).sum(axis=2)
        assert np.array_equal(fast, brute)

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            hamming_distance_matrix(np.zeros((2, 3)), np.zeros((2, 4)))

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            hamming_distance_matrix(np.zeros(3), np.zeros((2, 3)))


class TestFilterCalibrationRows:
    def test_removes_all_zero_and_one_hot(self):
        rows = np.array(
            [[0, 0, 0, 0], [1, 0, 0, 0], [1, 1, 0, 0], [0, 1, 1, 1]], dtype=np.uint8
        )
        filtered = filter_calibration_rows(rows)
        assert filtered.shape[0] == 2
        assert np.all(filtered.sum(axis=1) >= 2)

    def test_keep_all_zero_when_disabled(self):
        rows = np.array([[0, 0], [1, 1]], dtype=np.uint8)
        filtered = filter_calibration_rows(rows, filter_all_zero=False)
        assert filtered.shape[0] == 2

    def test_keep_one_hot_when_disabled(self):
        rows = np.array([[0, 1], [1, 1]], dtype=np.uint8)
        filtered = filter_calibration_rows(rows, filter_one_hot=False)
        assert filtered.shape[0] == 2

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            filter_calibration_rows(np.zeros(4))


class TestBinaryKmeans:
    def test_centers_are_binary(self, binary_matrix):
        result = binary_kmeans(binary_matrix, 8)
        assert result.centers.shape == (8, binary_matrix.shape[1])
        assert set(np.unique(result.centers)) <= {0, 1}

    def test_assignments_cover_all_rows(self, binary_matrix):
        result = binary_kmeans(binary_matrix, 8)
        assert result.assignments.shape == (binary_matrix.shape[0],)
        assert result.assignments.min() >= 0
        assert result.assignments.max() < 8

    def test_clustered_data_has_low_inertia(self, rng):
        # Two well-separated prototypes: inertia should approach the noise level.
        proto_a = np.zeros(16, dtype=np.uint8)
        proto_b = np.ones(16, dtype=np.uint8)
        rows = np.array([proto_a if i % 2 else proto_b for i in range(100)])
        result = binary_kmeans(rows, 2)
        assert result.inertia == 0

    def test_deterministic_for_seed(self, binary_matrix):
        a = binary_kmeans(binary_matrix, 6, KMeansConfig(seed=7))
        b = binary_kmeans(binary_matrix, 6, KMeansConfig(seed=7))
        assert np.array_equal(a.centers, b.centers)

    def test_more_clusters_never_hurts_inertia(self, binary_matrix):
        few = binary_kmeans(binary_matrix, 2, KMeansConfig(seed=1))
        many = binary_kmeans(binary_matrix, 16, KMeansConfig(seed=1))
        assert many.inertia <= few.inertia

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            binary_kmeans(np.zeros((0, 4), dtype=np.uint8), 2)

    def test_invalid_cluster_count(self, binary_matrix):
        with pytest.raises(ValueError):
            binary_kmeans(binary_matrix, 0)

    def test_pattern_set_property(self, binary_matrix):
        result = binary_kmeans(binary_matrix, 4)
        assert result.pattern_set.num_patterns == 4


class TestClusterPartition:
    def test_returns_pattern_set(self, binary_matrix):
        pattern_set = cluster_partition(binary_matrix, 8)
        assert pattern_set.width == binary_matrix.shape[1]
        assert 1 <= pattern_set.num_patterns <= 8

    def test_few_unique_rows_returned_directly(self):
        rows = np.tile(np.array([[1, 1, 0, 0], [0, 0, 1, 1]], dtype=np.uint8), (10, 1))
        pattern_set = cluster_partition(rows, 8)
        assert pattern_set.num_patterns == 2

    def test_degenerate_partition(self):
        rows = np.zeros((20, 4), dtype=np.uint8)
        pattern_set = cluster_partition(rows, 8)
        assert pattern_set.num_patterns >= 1

    def test_one_hot_only_partition(self):
        rows = np.eye(4, dtype=np.uint8)
        pattern_set = cluster_partition(rows, 2)
        assert pattern_set.num_patterns >= 1


class TestUniqueBinaryRows:
    """unique_binary_rows must agree exactly with np.unique(axis=0)."""

    @pytest.mark.parametrize("width", [1, 3, 8, 9, 16, 33])
    @pytest.mark.parametrize("density", [0.1, 0.5, 0.9])
    def test_matches_np_unique(self, width, density):
        rng = np.random.default_rng(width * 10 + int(density * 10))
        rows = (rng.random((200, width)) < density).astype(np.uint8)
        expected = np.unique(rows, axis=0)
        np.testing.assert_array_equal(unique_binary_rows(rows), expected)

    def test_empty_and_degenerate_inputs(self):
        empty = np.zeros((0, 4), dtype=np.uint8)
        np.testing.assert_array_equal(
            unique_binary_rows(empty), np.unique(empty, axis=0)
        )
        single = np.ones((5, 1), dtype=np.uint8)
        np.testing.assert_array_equal(
            unique_binary_rows(single), np.unique(single, axis=0)
        )

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            unique_binary_rows(np.zeros(4, dtype=np.uint8))

    def test_precomputed_unique_rows_change_nothing(self):
        rng = np.random.default_rng(0)
        rows = (rng.random((120, 12)) < 0.5).astype(np.uint8)
        plain = binary_kmeans(rows, 8)
        seeded = binary_kmeans(rows, 8, unique_rows=unique_binary_rows(rows))
        np.testing.assert_array_equal(plain.centers, seeded.centers)
        np.testing.assert_array_equal(plain.assignments, seeded.assignments)
        assert plain.inertia == seeded.inertia
