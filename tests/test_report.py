"""End-to-end and unit tests for the reproduction-report pipeline."""

from __future__ import annotations

import json

import pytest

from repro.experiments import REGISTRY, get_experiment
from repro.report import markdown_table, section_cache_key
from repro.report.cli import main as report_main
from repro.report.linkcheck import check_file, slugify


class TestMarkdownTable:
    def test_renders_rows_and_missing_cells(self):
        text = markdown_table([{"a": 1, "b": 0.5}, {"a": 2}])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[2] == "| 1 | 0.5 |"
        assert lines[3] == "| 2 | - |"

    def test_empty(self):
        assert "empty" in markdown_table([])

    def test_column_selection(self):
        text = markdown_table([{"a": 1, "b": 2}], columns=["b"])
        assert text.splitlines()[0] == "| b |"


class TestSectionCacheKey:
    def test_key_depends_on_experiment_and_scale(self):
        fig7 = get_experiment("fig7")
        table3 = get_experiment("table3")
        assert section_cache_key(fig7, "tiny") != section_cache_key(table3, "tiny")
        assert section_cache_key(fig7, "tiny") != section_cache_key(fig7, "small")

    def test_key_depends_on_overrides(self):
        fig7 = get_experiment("fig7")
        assert section_cache_key(fig7, "tiny") != section_cache_key(
            fig7, "tiny", {"tile_sizes": (8,)}
        )


class TestReportEndToEnd:
    @pytest.fixture(scope="class")
    def report_dir(self, tmp_path_factory):
        """One cold TINY-scale report over the full registry."""
        root = tmp_path_factory.mktemp("report-e2e")
        out = root / "report"
        code = report_main(
            [
                "--scale",
                "tiny",
                "--cache-dir",
                str(root / "cache"),
                "--output",
                str(out),
                "--quiet",
            ]
        )
        assert code == 0
        return root

    def test_every_registered_experiment_appears(self, report_dir):
        text = (report_dir / "report" / "REPRODUCTION.md").read_text()
        for spec in REGISTRY:
            assert f"`{spec.name}`" in text, spec.name
            assert spec.paper_ref in text, spec.name
            assert spec.claim in text, spec.name

    def test_every_section_has_nonempty_results(self, report_dir):
        manifest = json.loads(
            (report_dir / "report" / "manifest.json").read_text()
        )
        assert len(manifest["sections"]) == len(REGISTRY)
        for section in manifest["sections"]:
            payload = json.loads(
                (report_dir / "report" / section["data"]).read_text()
            )
            assert payload["tables"], section["experiment"]
            assert payload["tables"][0]["rows"], section["experiment"]

    def test_data_files_are_content_addressed(self, report_dir):
        manifest = json.loads(
            (report_dir / "report" / "manifest.json").read_text()
        )
        for section in manifest["sections"]:
            digest = section["data"].split("/")[1].split("-")[0]
            assert section["hash"].startswith(digest)

    def test_report_links_are_valid(self, report_dir):
        errors = check_file(report_dir / "report" / "REPRODUCTION.md")
        assert errors == []

    def test_warm_rerun_comes_entirely_from_cache(self, report_dir):
        out = report_dir / "rerun"
        code = report_main(
            [
                "--scale",
                "tiny",
                "--cache-dir",
                str(report_dir / "cache"),
                "--output",
                str(out),
                "--quiet",
            ]
        )
        assert code == 0
        manifest = json.loads((out / "manifest.json").read_text())
        origins = {s["experiment"]: s["origin"] for s in manifest["sections"]}
        assert set(origins.values()) == {"cache"}, origins
        # Identical payloads => identical content-addressed file names.
        cold = json.loads((report_dir / "report" / "manifest.json").read_text())
        assert [s["data"] for s in manifest["sections"]] == [
            s["data"] for s in cold["sections"]
        ]

    def test_only_subset(self, report_dir):
        out = report_dir / "subset"
        code = report_main(
            [
                "--scale",
                "tiny",
                "--only",
                "table3,fig9",
                "--cache-dir",
                str(report_dir / "cache"),
                "--output",
                str(out),
                "--quiet",
            ]
        )
        assert code == 0
        manifest = json.loads((out / "manifest.json").read_text())
        assert [s["experiment"] for s in manifest["sections"]] == ["table3", "fig9"]

    def test_unknown_only_name_fails_loudly(self, report_dir, tmp_path):
        with pytest.raises(KeyError, match="unknown experiment"):
            report_main(
                ["--only", "fig99", "--output", str(tmp_path), "--quiet"]
            )


class TestLinkcheck:
    def test_detects_broken_file_link(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("see [missing](./nope.md) and [ok](./doc.md)")
        errors = check_file(doc)
        assert len(errors) == 1 and "nope.md" in errors[0]

    def test_detects_broken_anchor(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("# Title\n\n[jump](#elsewhere)\n[fine](#title)\n")
        errors = check_file(doc)
        assert len(errors) == 1 and "elsewhere" in errors[0]

    def test_skips_external_and_code_fences(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text(
            "[ext](https://example.com)\n```\n[fake](./nope.md)\n```\n"
        )
        assert check_file(doc) == []

    def test_slugify_matches_report_anchors(self):
        assert slugify("Fig. 7 — `fig7`") == "fig-7--fig7"
