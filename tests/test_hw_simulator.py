"""Tests for the end-to-end Phi accelerator simulator."""

import numpy as np
import pytest

from repro.core import PhiCalibrator, PhiConfig
from repro.hw import ArchConfig, PhiSimulator
from repro.workloads import generate_random_workload


@pytest.fixture(scope="module")
def simulator():
    arch = ArchConfig()
    phi = PhiConfig(partition_size=16, num_patterns=16, calibration_samples=2000)
    return PhiSimulator(arch, phi)


@pytest.fixture(scope="module")
def vgg_simulation(simulator, vgg_workload):
    return simulator.run(vgg_workload)


class TestLayerSimulation:
    def test_layer_count(self, vgg_simulation, vgg_workload):
        assert len(vgg_simulation.layers) == len(vgg_workload)

    def test_positive_cycles(self, vgg_simulation):
        for layer in vgg_simulation.layers:
            assert layer.compute_cycles > 0
            assert layer.total_cycles >= layer.compute_cycles
            assert layer.total_cycles >= layer.memory_cycles

    def test_traffic_positive(self, vgg_simulation):
        for layer in vgg_simulation.layers:
            assert layer.activation_bytes > 0
            assert layer.weight_bytes > 0
            assert layer.dram_bytes >= layer.activation_bytes + layer.weight_bytes

    def test_prefetch_never_exceeds_unfiltered(self, vgg_simulation):
        for layer in vgg_simulation.layers:
            assert layer.pwp_bytes_prefetched <= layer.pwp_bytes_unfiltered

    def test_compressed_activations_below_uncompressed(self, vgg_simulation):
        for layer in vgg_simulation.layers:
            assert layer.activation_bytes <= layer.activation_bytes_uncompressed

    def test_energy_positive(self, vgg_simulation):
        for layer in vgg_simulation.layers:
            assert layer.energy.total > 0
            assert layer.energy.dram > 0


class TestSimulationResult:
    def test_totals(self, vgg_simulation):
        assert vgg_simulation.total_cycles == pytest.approx(
            sum(l.total_cycles for l in vgg_simulation.layers)
        )
        assert vgg_simulation.runtime_seconds > 0
        assert vgg_simulation.total_operations > 0
        assert vgg_simulation.throughput_gops > 0
        assert vgg_simulation.energy_joules > 0
        assert vgg_simulation.energy_efficiency_gops_per_joule > 0

    def test_aggregate_breakdown(self, vgg_simulation):
        breakdown = vgg_simulation.aggregate_breakdown()
        assert 0.0 < breakdown.bit_density < 1.0
        assert breakdown.level2_density < breakdown.bit_density

    def test_aggregate_operations(self, vgg_simulation):
        totals = vgg_simulation.aggregate_operations()
        assert totals.phi_ops < totals.bit_sparse_ops < totals.dense_ops


class TestSimulatorBehaviour:
    def test_phi_faster_than_bit_sparse_execution(self, simulator, vgg_workload):
        result = simulator.run(vgg_workload)
        totals = result.aggregate_operations()
        assert totals.speedup_over_bit > 1.0
        assert totals.speedup_over_dense > 3.0

    def test_provided_calibration_used(self, vgg_workload):
        phi_config = PhiConfig(partition_size=16, num_patterns=16, calibration_samples=2000)
        simulator = PhiSimulator(ArchConfig(), phi_config)
        calibration = PhiCalibrator(phi_config).calibrate_model(
            vgg_workload.activation_matrices()
        )
        result = simulator.run(vgg_workload, calibration=calibration)
        assert len(result.layers) == len(vgg_workload)

    def test_partition_mismatch_rejected(self):
        with pytest.raises(ValueError):
            PhiSimulator(ArchConfig(tile_k=16), PhiConfig(partition_size=8))

    def test_more_patterns_reduce_compute(self):
        workload = generate_random_workload(density=0.15, m=512, k=64, n=32, seed=5)
        few = PhiSimulator(
            ArchConfig(), PhiConfig(partition_size=16, num_patterns=4, calibration_samples=2000)
        ).run(workload)
        many = PhiSimulator(
            ArchConfig(), PhiConfig(partition_size=16, num_patterns=64, calibration_samples=2000)
        ).run(workload)
        assert (
            many.aggregate_operations().phi_ops <= few.aggregate_operations().phi_ops
        )

    def test_denser_activations_cost_more_cycles(self):
        sparse = generate_random_workload(density=0.05, m=256, k=64, n=32, seed=1)
        dense = generate_random_workload(density=0.40, m=256, k=64, n=32, seed=1)
        simulator = PhiSimulator(
            ArchConfig(), PhiConfig(partition_size=16, num_patterns=16, calibration_samples=2000)
        )
        assert (
            simulator.run(sparse).total_cycles < simulator.run(dense).total_cycles
        )

    def test_transformer_workload_runs(self, simulator, spikformer_workload):
        result = simulator.run(spikformer_workload)
        assert result.total_cycles > 0
        assert result.total_operations > 0
