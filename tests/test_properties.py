"""Property-based tests (hypothesis) for the core invariants of Phi."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.kmeans import (
    binary_kmeans,
    filter_calibration_rows,
    hamming_distance_matrix,
)
from repro.core.metrics import operation_counts, sparsity_breakdown
from repro.core.patterns import PatternSet
from repro.core.sparsity import decompose_matrix, decompose_tile, partition_boundaries

binary_tiles = arrays(
    dtype=np.uint8,
    shape=st.tuples(st.integers(1, 40), st.just(8)),
    elements=st.integers(0, 1),
)

binary_patterns = arrays(
    dtype=np.uint8,
    shape=st.tuples(st.integers(1, 6), st.just(8)),
    elements=st.integers(0, 1),
)

binary_matrices = arrays(
    dtype=np.uint8,
    shape=st.tuples(st.integers(1, 30), st.integers(1, 40)),
    elements=st.integers(0, 1),
)


@settings(max_examples=40, deadline=None)
@given(tile=binary_tiles, patterns=binary_patterns)
def test_decomposition_is_always_exact(tile, patterns):
    """L1 + L2 always reconstructs the original activation tile."""
    pattern_set = PatternSet(patterns)
    result = decompose_tile(tile, pattern_set)
    assert np.array_equal(result.reconstruct(), tile.astype(np.int8))


@settings(max_examples=40, deadline=None)
@given(tile=binary_tiles, patterns=binary_patterns)
def test_level2_never_needs_more_work_than_bit_sparsity(tile, patterns):
    """Per row, the corrections never exceed the row's own popcount."""
    pattern_set = PatternSet(patterns)
    result = decompose_tile(tile, pattern_set)
    corrections = np.count_nonzero(result.level2, axis=1)
    popcounts = tile.sum(axis=1)
    assert np.all(corrections <= popcounts)


@settings(max_examples=40, deadline=None)
@given(tile=binary_tiles, patterns=binary_patterns)
def test_level2_values_are_ternary(tile, patterns):
    result = decompose_tile(tile, PatternSet(patterns))
    assert set(np.unique(result.level2)) <= {-1, 0, 1}


@settings(max_examples=30, deadline=None)
@given(tile=binary_tiles, patterns=binary_patterns, data=st.data())
def test_decomposed_matmul_matches_reference(tile, patterns, data):
    """Computing through PWPs + Level 2 equals the plain GEMM."""
    pattern_set = PatternSet(patterns)
    result = decompose_tile(tile, pattern_set)
    seed = data.draw(st.integers(0, 2**16))
    weights = np.random.default_rng(seed).standard_normal((tile.shape[1], 3))
    assert np.allclose(result.compute_output(weights), tile @ weights, atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(matrix=binary_matrices, partition=st.integers(2, 16))
def test_matrix_decomposition_reconstructs(matrix, partition):
    boundaries = partition_boundaries(matrix.shape[1], partition)
    rng = np.random.default_rng(0)
    pattern_sets = [
        PatternSet((rng.random((4, stop - start)) < 0.4).astype(np.uint8))
        for start, stop in boundaries
    ]
    result = decompose_matrix(matrix, pattern_sets, partition)
    assert np.array_equal(result.reconstruct(), matrix.astype(np.int8))


@settings(max_examples=30, deadline=None)
@given(matrix=binary_matrices, partition=st.integers(2, 16))
def test_operation_counts_invariants(matrix, partition):
    boundaries = partition_boundaries(matrix.shape[1], partition)
    rng = np.random.default_rng(1)
    pattern_sets = [
        PatternSet((rng.random((4, stop - start)) < 0.4).astype(np.uint8))
        for start, stop in boundaries
    ]
    decomposition = decompose_matrix(matrix, pattern_sets, partition)
    counts = operation_counts(decomposition)
    breakdown = sparsity_breakdown(decomposition)
    assert counts.bit_sparse_ops <= counts.dense_ops
    assert counts.phi_level2_ops <= counts.bit_sparse_ops
    assert 0.0 <= breakdown.level2_density <= breakdown.bit_density <= 1.0


@settings(max_examples=30, deadline=None)
@given(
    rows=arrays(
        dtype=np.uint8,
        shape=st.tuples(st.integers(2, 60), st.integers(2, 16)),
        elements=st.integers(0, 1),
    ),
    clusters=st.integers(1, 8),
)
def test_kmeans_centers_binary_and_assignments_valid(rows, clusters):
    result = binary_kmeans(rows, clusters)
    assert set(np.unique(result.centers)) <= {0, 1}
    assert result.assignments.min() >= 0
    assert result.assignments.max() < clusters
    assert result.inertia >= 0


@settings(max_examples=40, deadline=None)
@given(
    rows=arrays(
        dtype=np.uint8,
        shape=st.tuples(st.integers(1, 40), st.integers(1, 16)),
        elements=st.integers(0, 1),
    )
)
def test_filter_removes_only_degenerate_rows(rows):
    filtered = filter_calibration_rows(rows)
    assert np.all(filtered.sum(axis=1) >= 2)
    kept_mask = rows.sum(axis=1) >= 2
    assert filtered.shape[0] == int(kept_mask.sum())


@settings(max_examples=30, deadline=None)
@given(
    rows=arrays(
        dtype=np.uint8,
        shape=st.tuples(st.integers(1, 20), st.integers(1, 12)),
        elements=st.integers(0, 1),
    ),
    centers=arrays(
        dtype=np.uint8,
        shape=st.tuples(st.integers(1, 6), st.integers(1, 12)),
        elements=st.integers(0, 1),
    ),
)
def test_hamming_distance_matrix_properties(rows, centers):
    if rows.shape[1] != centers.shape[1]:
        rows = rows[:, : min(rows.shape[1], centers.shape[1])]
        centers = centers[:, : rows.shape[1]]
    distances = hamming_distance_matrix(rows, centers)
    assert distances.min() >= 0
    assert distances.max() <= rows.shape[1]


@settings(max_examples=50, deadline=None)
@given(total=st.integers(1, 500), partition=st.integers(1, 64))
def test_partition_boundaries_cover_exactly(total, partition):
    boundaries = partition_boundaries(total, partition)
    assert boundaries[0][0] == 0
    assert boundaries[-1][1] == total
    for (a_start, a_stop), (b_start, b_stop) in zip(boundaries, boundaries[1:]):
        assert a_stop == b_start
        assert a_stop - a_start == partition
    assert all(stop > start for start, stop in boundaries)
