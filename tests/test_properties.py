"""Property-based tests (hypothesis) for the core invariants of Phi."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.kmeans import (
    binary_kmeans,
    filter_calibration_rows,
    hamming_distance_matrix,
)
from repro.core.metrics import operation_counts, sparsity_breakdown
from repro.core.patterns import PatternSet
from repro.core.sparsity import decompose_matrix, decompose_tile, partition_boundaries

binary_tiles = arrays(
    dtype=np.uint8,
    shape=st.tuples(st.integers(1, 40), st.just(8)),
    elements=st.integers(0, 1),
)


@st.composite
def tile_with_patterns(draw):
    """A binary tile plus a pattern set of matching (drawn) width.

    Unlike :data:`binary_tiles`, both the partition width and the pattern
    count vary, so the decomposition invariants are exercised across the
    whole (shape, pattern-count) grid rather than at a fixed width.
    """
    width = draw(st.integers(1, 24))
    rows = draw(st.integers(1, 32))
    num_patterns = draw(st.integers(1, 12))
    tile = draw(
        arrays(dtype=np.uint8, shape=(rows, width), elements=st.integers(0, 1))
    )
    patterns = draw(
        arrays(dtype=np.uint8, shape=(num_patterns, width), elements=st.integers(0, 1))
    )
    return tile, patterns

binary_patterns = arrays(
    dtype=np.uint8,
    shape=st.tuples(st.integers(1, 6), st.just(8)),
    elements=st.integers(0, 1),
)

binary_matrices = arrays(
    dtype=np.uint8,
    shape=st.tuples(st.integers(1, 30), st.integers(1, 40)),
    elements=st.integers(0, 1),
)


@settings(max_examples=40, deadline=None)
@given(tile=binary_tiles, patterns=binary_patterns)
def test_decomposition_is_always_exact(tile, patterns):
    """L1 + L2 always reconstructs the original activation tile."""
    pattern_set = PatternSet(patterns)
    result = decompose_tile(tile, pattern_set)
    assert np.array_equal(result.reconstruct(), tile.astype(np.int8))


@settings(max_examples=40, deadline=None)
@given(tile=binary_tiles, patterns=binary_patterns)
def test_level2_never_needs_more_work_than_bit_sparsity(tile, patterns):
    """Per row, the corrections never exceed the row's own popcount."""
    pattern_set = PatternSet(patterns)
    result = decompose_tile(tile, pattern_set)
    corrections = np.count_nonzero(result.level2, axis=1)
    popcounts = tile.sum(axis=1)
    assert np.all(corrections <= popcounts)


@settings(max_examples=40, deadline=None)
@given(tile=binary_tiles, patterns=binary_patterns)
def test_level2_values_are_ternary(tile, patterns):
    result = decompose_tile(tile, PatternSet(patterns))
    assert set(np.unique(result.level2)) <= {-1, 0, 1}


@settings(max_examples=60, deadline=None)
@given(tile_patterns=tile_with_patterns())
def test_decomposition_exact_across_shapes_and_pattern_counts(tile_patterns):
    """L1 + L2 == A for every tile shape and pattern count combination."""
    tile, patterns = tile_patterns
    result = decompose_tile(tile, PatternSet(patterns))
    level1 = result.level1_matrix().astype(np.int16)
    level2 = result.level2.astype(np.int16)
    assert np.array_equal(level1 + level2, tile.astype(np.int16))
    assert np.array_equal(result.reconstruct(), tile.astype(np.int8))


@settings(max_examples=60, deadline=None)
@given(tile_patterns=tile_with_patterns())
def test_level2_ternary_across_shapes_and_pattern_counts(tile_patterns):
    """Level 2 values stay in {-1, 0, +1} for arbitrary shapes/counts."""
    tile, patterns = tile_patterns
    result = decompose_tile(tile, PatternSet(patterns))
    assert set(np.unique(result.level2)) <= {-1, 0, 1}
    # Pattern indices stay in the valid range (0 = no pattern).
    assert result.pattern_indices.min() >= 0
    assert result.pattern_indices.max() <= patterns.shape[0]


@settings(max_examples=40, deadline=None)
@given(tile_patterns=tile_with_patterns(), data=st.data())
def test_row_slice_equals_decomposing_the_slice(tile_patterns, data):
    """Slicing a decomposition == decomposing the row slice.

    This is the exact-equivalence property the simulator's decomposition
    reuse rests on: rows are decomposed independently.
    """
    tile, patterns = tile_patterns
    pattern_set = PatternSet(patterns)
    full = decompose_tile(tile, pattern_set)
    start = data.draw(st.integers(0, tile.shape[0] - 1))
    stop = data.draw(st.integers(start, tile.shape[0]))
    sliced = full.row_slice(start, stop)
    fresh = decompose_tile(tile[start:stop], pattern_set)
    assert np.array_equal(sliced.pattern_indices, fresh.pattern_indices)
    assert np.array_equal(sliced.level2, fresh.level2)
    assert np.array_equal(sliced.original, fresh.original)


@settings(max_examples=30, deadline=None)
@given(tile=binary_tiles, patterns=binary_patterns, data=st.data())
def test_decomposed_matmul_matches_reference(tile, patterns, data):
    """Computing through PWPs + Level 2 equals the plain GEMM."""
    pattern_set = PatternSet(patterns)
    result = decompose_tile(tile, pattern_set)
    seed = data.draw(st.integers(0, 2**16))
    weights = np.random.default_rng(seed).standard_normal((tile.shape[1], 3))
    assert np.allclose(result.compute_output(weights), tile @ weights, atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(matrix=binary_matrices, partition=st.integers(2, 16))
def test_matrix_decomposition_reconstructs(matrix, partition):
    boundaries = partition_boundaries(matrix.shape[1], partition)
    rng = np.random.default_rng(0)
    pattern_sets = [
        PatternSet((rng.random((4, stop - start)) < 0.4).astype(np.uint8))
        for start, stop in boundaries
    ]
    result = decompose_matrix(matrix, pattern_sets, partition)
    assert np.array_equal(result.reconstruct(), matrix.astype(np.int8))


@settings(max_examples=30, deadline=None)
@given(matrix=binary_matrices, partition=st.integers(2, 16))
def test_operation_counts_invariants(matrix, partition):
    boundaries = partition_boundaries(matrix.shape[1], partition)
    rng = np.random.default_rng(1)
    pattern_sets = [
        PatternSet((rng.random((4, stop - start)) < 0.4).astype(np.uint8))
        for start, stop in boundaries
    ]
    decomposition = decompose_matrix(matrix, pattern_sets, partition)
    counts = operation_counts(decomposition)
    breakdown = sparsity_breakdown(decomposition)
    assert counts.bit_sparse_ops <= counts.dense_ops
    assert counts.phi_level2_ops <= counts.bit_sparse_ops
    assert 0.0 <= breakdown.level2_density <= breakdown.bit_density <= 1.0


@settings(max_examples=30, deadline=None)
@given(
    rows=arrays(
        dtype=np.uint8,
        shape=st.tuples(st.integers(2, 60), st.integers(2, 16)),
        elements=st.integers(0, 1),
    ),
    clusters=st.integers(1, 8),
)
def test_kmeans_centers_binary_and_assignments_valid(rows, clusters):
    result = binary_kmeans(rows, clusters)
    assert set(np.unique(result.centers)) <= {0, 1}
    assert result.assignments.min() >= 0
    assert result.assignments.max() < clusters
    assert result.inertia >= 0


@settings(max_examples=40, deadline=None)
@given(
    rows=arrays(
        dtype=np.uint8,
        shape=st.tuples(st.integers(1, 40), st.integers(1, 16)),
        elements=st.integers(0, 1),
    )
)
def test_filter_removes_only_degenerate_rows(rows):
    filtered = filter_calibration_rows(rows)
    assert np.all(filtered.sum(axis=1) >= 2)
    kept_mask = rows.sum(axis=1) >= 2
    assert filtered.shape[0] == int(kept_mask.sum())


@settings(max_examples=30, deadline=None)
@given(
    rows=arrays(
        dtype=np.uint8,
        shape=st.tuples(st.integers(1, 20), st.integers(1, 12)),
        elements=st.integers(0, 1),
    ),
    centers=arrays(
        dtype=np.uint8,
        shape=st.tuples(st.integers(1, 6), st.integers(1, 12)),
        elements=st.integers(0, 1),
    ),
)
def test_hamming_distance_matrix_properties(rows, centers):
    if rows.shape[1] != centers.shape[1]:
        rows = rows[:, : min(rows.shape[1], centers.shape[1])]
        centers = centers[:, : rows.shape[1]]
    distances = hamming_distance_matrix(rows, centers)
    assert distances.min() >= 0
    assert distances.max() <= rows.shape[1]


index_matrices = arrays(
    dtype=np.int32,
    shape=st.tuples(st.integers(0, 24), st.integers(1, 40)),
    elements=st.integers(0, 9),
)


@settings(max_examples=50, deadline=None)
@given(matrix=index_matrices, lanes=st.integers(1, 8))
def test_l1_cycles_match_naive_reference(matrix, lanes):
    """The vectorized L1 cycle model equals the per-row/group loop."""
    from repro.hw.config import ArchConfig
    from repro.hw.l1_processor import L1Processor

    arch = ArchConfig(num_channels=lanes, num_patterns=16)
    result = L1Processor(arch).process_tile(matrix, num_patterns_per_partition=16)

    group = 16
    expected_cycles = 0
    for row in range(matrix.shape[0]):
        for start in range(0, matrix.shape[1], group):
            nonzeros = int(np.count_nonzero(matrix[row, start : start + group]))
            expected_cycles += 1 if nonzeros == 0 else int(np.ceil(nonzeros / lanes))
    assert result.cycles == expected_cycles
    assert result.pwp_accumulations == int(np.count_nonzero(matrix))


@settings(max_examples=50, deadline=None)
@given(
    matrix=arrays(
        dtype=np.int32,
        shape=st.tuples(st.integers(0, 20), st.integers(1, 12)),
        elements=st.integers(-3, 6),
    )
)
def test_distinct_nonzero_per_column_matches_unique(matrix):
    """The presence-table scatter equals the per-column np.unique loop."""
    from repro.hw.l1_processor import distinct_nonzero_per_column

    expected = sum(
        int(np.count_nonzero(np.unique(matrix[:, c]))) for c in range(matrix.shape[1])
    )
    assert distinct_nonzero_per_column(matrix) == expected


@settings(max_examples=40, deadline=None)
@given(
    level2=arrays(
        dtype=np.int8,
        shape=st.tuples(st.integers(0, 24), st.integers(1, 16)),
        elements=st.integers(-1, 1),
    ),
    needs_psum=st.booleans(),
)
def test_compress_and_pack_conserve_units(level2, needs_psum):
    """Every Level 2 nonzero (plus psums) lands in exactly one pack unit."""
    from repro.hw.config import ArchConfig
    from repro.hw.preprocessor import Compressor, Packer

    arch = ArchConfig(num_patterns=16)
    compressed = Compressor(arch).compress(level2, needs_psum=needs_psum)
    nonzero_rows = int(np.count_nonzero(np.count_nonzero(level2, axis=1)))
    assert compressed.filtered_rows == level2.shape[0] - nonzero_rows
    assert compressed.total_nonzeros == int(np.count_nonzero(level2))

    packed = Packer(arch).pack_rows(compressed.rows)
    total_units = sum(pack.num_units for pack in packed.packs)
    expected_psums = nonzero_rows if needs_psum else 0
    assert total_units == compressed.total_nonzeros + expected_psums
    weight_units = sum(pack.num_weight_units for pack in packed.packs)
    psum_units = sum(pack.num_psum_units for pack in packed.packs)
    assert weight_units == compressed.total_nonzeros
    assert psum_units == expected_psums
    assert all(pack.num_units <= arch.pack_size for pack in packed.packs)
    # The packer's conflict avoidance guarantees every psum unit of a pack
    # lands in a distinct bank, so Pack.psum_banks (derived from the unit
    # list) must agree with the packer's own mirrored bank bookkeeping.
    for pack in packed.packs:
        assert len(pack.psum_banks(arch.num_channels)) == pack.num_psum_units


@settings(max_examples=50, deadline=None)
@given(total=st.integers(1, 500), partition=st.integers(1, 64))
def test_partition_boundaries_cover_exactly(total, partition):
    boundaries = partition_boundaries(total, partition)
    assert boundaries[0][0] == 0
    assert boundaries[-1][1] == total
    for (a_start, a_stop), (b_start, b_stop) in zip(boundaries, boundaries[1:]):
        assert a_stop == b_start
        assert a_stop - a_start == partition
    assert all(stop > start for start, stop in boundaries)
