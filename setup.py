"""Setup entry point; all metadata lives in ``setup.cfg``.

Install for development with::

    pip install -e ".[test]"

On minimal offline environments where pip's PEP 660 editable build is
unavailable (setuptools < 70 without the ``wheel`` package), fall back
to the legacy path, which needs nothing beyond setuptools::

    python setup.py develop
"""
from setuptools import setup

setup()
