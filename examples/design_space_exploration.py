#!/usr/bin/env python
"""Design-space exploration of Phi (a mini Fig. 7).

Sweeps the two key algorithm/architecture knobs — the K partition size and
the number of calibrated patterns per partition — on a spiking VGG
workload and prints how the Level 1 / Level 2 densities, the online
operation count and the PWP memory footprint respond.  The sweet spot of
the sweep justifies the configuration used by the accelerator.

Run with:  python examples/design_space_exploration.py [--jobs N]
(after ``pip install -e .``)

Both sweeps route through the :class:`repro.runner.SweepEngine`, so
``--jobs`` fans the grid points out over worker processes and a second
invocation is served from the on-disk result cache.

Registry cross-reference: the full evaluation version is the ``fig7``
entry of ``python -m repro.report --list`` (also reachable as
``python -m repro.runner fig7``).
"""

from __future__ import annotations

import argparse

try:
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - user guidance only
    raise SystemExit(
        "phi-repro is not installed; run `pip install -e .` from the repo root"
    )

from repro.experiments import ExperimentScale, run_fig7_pattern_sweep, run_fig7_tile_sweep
from repro.runner import ResultCache, SweepEngine

SCALE = ExperimentScale(batch_size=4, num_steps=2, num_patterns=32, calibration_samples=3000)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", "-j", type=int, default=1, help="worker processes")
    parser.add_argument("--no-cache", action="store_true", help="recompute everything")
    args = parser.parse_args()
    cache = None if args.no_cache else ResultCache()
    engine = SweepEngine(cache=cache, jobs=args.jobs)

    print("=== Sweep 1: K partition (tile) size, q fixed ===")
    print(f"{'k':>4}{'element density':>18}{'vector density':>17}{'phi cycles':>13}")
    tile_points = run_fig7_tile_sweep(SCALE, tile_sizes=(4, 8, 16, 32), engine=engine)
    for point in tile_points:
        print(
            f"{point.k_tile:>4}"
            f"{point.element_density:>18.4f}"
            f"{point.vector_density:>17.4f}"
            f"{point.phi_cycles:>13.3f}"
        )
    best = min(tile_points, key=lambda p: p.total_density)
    print(f"-> lowest total density at k = {best.k_tile} "
          "(the paper selects k = 16 at full scale)\n")

    print("=== Sweep 2: number of patterns per partition, k = 16 ===")
    print(f"{'q':>6}{'phi cycles (norm.)':>21}{'PWP DRAM bytes':>17}")
    pattern_points = run_fig7_pattern_sweep(
        SCALE, pattern_counts=(8, 16, 32, 64, 128), engine=engine
    )
    for point in pattern_points:
        print(
            f"{point.num_patterns:>6}"
            f"{point.phi_cycles:>21.3f}"
            f"{point.pwp_memory_bytes:>17.0f}"
        )
    print("-> more patterns keep reducing online compute, but PWP memory "
          "traffic grows; the knee of the curve picks the configuration "
          "(the paper selects q = 128 at full scale).")
    stats = engine.stats
    print(
        f"\n[engine] {stats.requested} points, {stats.cache_hits} cache hits, "
        f"{stats.executed} simulated"
    )


if __name__ == "__main__":
    main()
