#!/usr/bin/env python
"""Accelerator comparison across the model zoo (a mini Fig. 8).

The example runs every baseline SNN accelerator plus Phi on three
workloads — a spiking CNN on images, a spiking transformer on an event
stream and a spiking language model on text — and prints the speedup and
energy-efficiency table normalised to Spiking Eyeriss.

Run with:  python examples/accelerator_comparison.py  (after ``pip install -e .``)

Registry cross-reference: the full evaluation versions are the ``fig8``
and ``table2`` entries of ``python -m repro.report --list``.
"""

from __future__ import annotations

try:
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - user guidance only
    raise SystemExit(
        "phi-repro is not installed; run `pip install -e .` from the repo root"
    )

from repro.baselines import PhiAccelerator, available_baselines, get_baseline
from repro.core import PhiConfig
from repro.workloads import generate_workload

WORKLOADS = (
    ("vgg16", "cifar100"),
    ("spikformer", "cifar10dvs"),
    ("spikebert", "sst2"),
)


def main() -> None:
    phi_config = PhiConfig(partition_size=16, num_patterns=64, calibration_samples=4000)

    for model_name, dataset_name in WORKLOADS:
        workload = generate_workload(model_name, dataset_name, batch_size=4, num_steps=4)
        print(f"\n=== {model_name} / {dataset_name} "
              f"(bit density {workload.average_bit_density:.1%}, "
              f"{len(workload)} GEMMs) ===")

        reports = {}
        for name in available_baselines():
            reports[name] = get_baseline(name).simulate(workload)
        reports["phi"] = PhiAccelerator(phi_config=phi_config).simulate(workload)

        reference = reports["eyeriss"]
        header = f"{'accelerator':<12}{'GOP/s':>10}{'speedup':>10}{'GOP/J':>10}{'energy x':>10}"
        print(header)
        print("-" * len(header))
        for name, report in reports.items():
            print(
                f"{name:<12}"
                f"{report.throughput_gops:>10.2f}"
                f"{report.throughput_gops / reference.throughput_gops:>10.2f}"
                f"{report.energy_efficiency_gops_per_joule:>10.2f}"
                f"{report.energy_efficiency_gops_per_joule / reference.energy_efficiency_gops_per_joule:>10.2f}"
            )


if __name__ == "__main__":
    main()
