#!/usr/bin/env python
"""Pattern-Aware Fine-Tuning (PAFT) on a small spiking classifier.

The example trains a small spiking VGG on a synthetic image task, then
fine-tunes it with the PAFT regulariser (Section 3.3 of the paper) and
shows the effect on Level 2 density and accuracy: the regulariser pulls
spike activations towards the calibrated patterns, which reduces the
runtime corrections the accelerator has to process at a small accuracy
cost.

Run with:  python examples/paft_finetuning.py  (after ``pip install -e .``)

Registry cross-reference: the evaluation versions of this analysis are
the ``fig9``, ``fig10`` and ``fig11`` entries of
``python -m repro.report --list``.
"""

from __future__ import annotations

import numpy as np

try:
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - user guidance only
    raise SystemExit(
        "phi-repro is not installed; run `pip install -e .` from the repo root"
    )

from repro.core import PAFTConfig, PhiCalibrator, PhiConfig, sparsity_breakdown
from repro.datasets import make_dataset
from repro.snn import SGDTrainer, build_model
from repro.workloads import extract_workload


def element_density(network, data, calibration) -> float:
    """Level 2 density of the network's spike GEMMs on ``data``."""
    workload = extract_workload(network, data, dataset_name="probe")
    densities = []
    weights = []
    for layer in workload:
        if layer.name not in calibration:
            continue
        decomposition = calibration[layer.name].decompose(layer.activations)
        densities.append(sparsity_breakdown(decomposition).level2_density)
        weights.append(layer.activations.size)
    return float(np.average(densities, weights=weights)) if densities else 0.0


def main() -> None:
    dataset = make_dataset("cifar10", num_train=96, num_test=48)
    channels, image_size, _ = dataset.input_shape
    network = build_model(
        "vgg16",
        num_classes=dataset.num_classes,
        in_channels=channels,
        image_size=image_size,
        channels=(8, 16),
        num_steps=3,
    )

    # ------------------------------------------------------------------
    # 1. Ordinary training.
    # ------------------------------------------------------------------
    trainer = SGDTrainer(network, learning_rate=0.05, momentum=0.9)
    history = trainer.fit(
        dataset.train_data, dataset.train_labels, epochs=3, batch_size=16,
        eval_data=dataset.test_data, eval_labels=dataset.test_labels,
    )
    print(f"Baseline training: loss {history.losses[0]:.3f} -> {history.losses[-1]:.3f}, "
          f"accuracy {history.final_accuracy:.2%}")

    # ------------------------------------------------------------------
    # 2. Calibrate patterns on a small training subset (Section 3.2).
    # ------------------------------------------------------------------
    config = PhiConfig(partition_size=16, num_patterns=32, calibration_samples=4000)
    _, records = network.record_activations(dataset.train_data[:16])
    layer_activations = {
        name: record.stacked().astype(np.uint8)
        for name, record in records.items()
        if record.matrices and record.is_binary
    }
    calibration = PhiCalibrator(config).calibrate_model(layer_activations)
    before = element_density(network, dataset.test_data[:8], calibration)
    accuracy_before = trainer.evaluate(dataset.test_data, dataset.test_labels)

    # ------------------------------------------------------------------
    # 3. PAFT fine-tuning with the Hamming-distance regulariser.
    # ------------------------------------------------------------------
    trainer.enable_paft(calibration, PAFTConfig(lam=1e-4, learning_rate=5e-3, epochs=2))
    paft_history = trainer.fit(
        dataset.train_data, dataset.train_labels, epochs=2, batch_size=16,
    )
    after = element_density(network, dataset.test_data[:8], calibration)
    accuracy_after = trainer.evaluate(dataset.test_data, dataset.test_labels)

    print("\nPAFT fine-tuning results:")
    print(f"  Level 2 element density : {before:.3%} -> {after:.3%}")
    print(f"  test accuracy           : {accuracy_before:.2%} -> {accuracy_after:.2%}")
    print(f"  regulariser trajectory  : "
          f"{paft_history.regularizers[0]:.1f} -> {paft_history.regularizers[-1]:.1f}")
    print("\nLower element density means fewer Level 2 corrections for the "
          "accelerator, i.e. faster inference (Fig. 10 of the paper).")


if __name__ == "__main__":
    main()
