#!/usr/bin/env python
"""Quickstart: Phi sparsity end to end on a spiking VGG.

The example walks through the complete pipeline of the paper:

1. build a (scaled) spiking VGG and record its spike activations on a
   synthetic CIFAR-like dataset,
2. calibrate patterns with the Hamming-distance k-means (Algorithm 1),
3. decompose the activations into Level 1 + Level 2 Phi sparsity and
   verify the decomposition is lossless,
4. simulate the Phi accelerator and compare it against the dense Spiking
   Eyeriss baseline.

Run with:  python examples/quickstart.py  (after ``pip install -e .``)

Registry cross-reference: the same pipeline at evaluation scale is the
``table2`` / ``table4`` entries of ``python -m repro.report --list``.
"""

from __future__ import annotations

import numpy as np

try:
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - user guidance only
    raise SystemExit(
        "phi-repro is not installed; run `pip install -e .` from the repo root"
    )

from repro.baselines import PhiAccelerator, get_baseline
from repro.core import PhiCalibrator, PhiConfig, operation_counts, sparsity_breakdown
from repro.datasets import make_dataset
from repro.snn import build_model
from repro.workloads import extract_workload


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Build a spiking VGG and record its spike activations.
    # ------------------------------------------------------------------
    dataset = make_dataset("cifar10", num_train=32, num_test=16)
    channels, image_size, _ = dataset.input_shape
    network = build_model(
        "vgg16",
        num_classes=dataset.num_classes,
        in_channels=channels,
        image_size=image_size,
        num_steps=4,
    )
    print(f"Built {network.name} with {network.num_parameters():,} parameters")

    workload = extract_workload(network, dataset.test_data[:4], dataset_name="cifar10")
    print(f"Recorded {len(workload)} spike GEMMs "
          f"(average bit density {workload.average_bit_density:.1%})")

    # ------------------------------------------------------------------
    # 2. Calibrate patterns (k = 16, q = 64 on the scaled model).
    # ------------------------------------------------------------------
    config = PhiConfig(partition_size=16, num_patterns=64, calibration_samples=4000)
    calibrator = PhiCalibrator(config)
    calibration = calibrator.calibrate_model(workload.activation_matrices())
    print(f"Calibrated patterns for {len(calibration.layer_names())} layers")

    # ------------------------------------------------------------------
    # 3. Decompose one layer and verify the decomposition is lossless.
    # ------------------------------------------------------------------
    layer = workload[1]
    decomposition = calibration[layer.name].decompose(layer.activations)
    breakdown = sparsity_breakdown(decomposition)
    counts = operation_counts(decomposition)
    exact = np.allclose(
        decomposition.compute_output(layer.weights), layer.reference_output()
    )
    print(f"\nLayer {layer.name!r} (M={layer.m}, K={layer.k}, N={layer.n})")
    print(f"  bit density      : {breakdown.bit_density:.2%}")
    print(f"  L1 density       : {breakdown.level1_density:.2%}")
    print(f"  L2 density       : {breakdown.level2_density:.2%}")
    print(f"  speedup over bit : {counts.speedup_over_bit:.2f}x")
    print(f"  speedup over dense: {counts.speedup_over_dense:.2f}x")
    print(f"  lossless         : {exact}")

    # ------------------------------------------------------------------
    # 4. Simulate the Phi accelerator vs the dense baseline.
    # ------------------------------------------------------------------
    phi = PhiAccelerator(phi_config=config).simulate(workload, calibration=calibration)
    eyeriss = get_baseline("eyeriss").simulate(workload)
    print("\nAccelerator comparison (same workload, same OP definition):")
    print(f"  Spiking Eyeriss : {eyeriss.throughput_gops:8.2f} GOP/s   "
          f"{eyeriss.energy_efficiency_gops_per_joule:8.2f} GOP/J")
    print(f"  Phi             : {phi.throughput_gops:8.2f} GOP/s   "
          f"{phi.energy_efficiency_gops_per_joule:8.2f} GOP/J")
    print(f"  speedup         : {phi.throughput_gops / eyeriss.throughput_gops:.2f}x")
    print(f"  energy ratio    : "
          f"{phi.energy_efficiency_gops_per_joule / eyeriss.energy_efficiency_gops_per_joule:.2f}x")


if __name__ == "__main__":
    main()
